package serve

import (
	"errors"
	"fmt"
	"time"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/convnet"
	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/mlp"
	"phideep/internal/parallel"
	"phideep/internal/rbm"
	"phideep/internal/tensor"
)

// worker executes homogeneous request batches on one of two forward paths,
// fixed at construction by Config.Precision:
//
//   - F64: a private simulated device (devices are not safe for concurrent
//     use) with a forward-only model replica, the exact path training ran.
//     When Config.Faults is armed, the device injects deterministic
//     transfer faults from the worker's derived stream; staging uses the
//     non-panicking TryCopyIn/TryCopyOut under retryTransfer.
//   - F32: the reduced-precision host path — a float32 inference replica
//     running the packed f32 kernels directly on the worker's pool, no
//     device in the loop. Weights are the model's shared f32 snapshot;
//     activations are private.
//
// All workers share the server's immutable Model snapshot read-only. The
// lifecycle fields (restarts, retired, cause) are owned by the worker's
// own goroutine: only loop and the supervisor it calls touch them.
type worker struct {
	s    *Server
	slot int

	// restarts counts rebuilds consumed from Config.MaxRestarts; retired
	// marks the slot permanently failed with cause the final fault.
	restarts int
	retired  bool
	cause    error

	ctx  *blas.Context
	pool *parallel.Pool

	ae *autoencoder.Model
	rb *rbm.Model
	ml *mlp.Model
	cv *convnet.Model

	ae32 *autoencoder.Inference32
	rb32 *rbm.Inference32
	ml32 *mlp.Inference32
	cv32 *convnet.Inference32

	// x is the staging input buffer, MaxBatch×InputDim; partial batches
	// compute on its [0,n) row view. stage is its host mirror — CopyIn
	// transfers whole buffers, so short batches ride in with stale tail
	// rows that the sliced forward pass never reads. stage32 plays the
	// same staging role for the f32 path, with the float64→float32
	// rounding folded into the row copy.
	x       *device.Buffer
	stage   *tensor.Matrix
	stage32 *tensor.Matrix32
}

// newWorker builds worker i's first incarnation.
func newWorker(s *Server, i int) (*worker, error) {
	w := &worker{s: s, slot: i}
	if err := w.build(); err != nil {
		return nil, err
	}
	return w, nil
}

// build constructs the worker's execution state: private pool (optional),
// then either the device-resident f64 replica or the host-side f32
// replica. The supervisor calls it again after teardown to rebuild a
// faulted worker on a fresh device. Fault injection arms only after the
// replica is built and staging is allocated: model upload happens on the
// panicking transfer path by design — provisioning is fenced off from
// serving, as it would be in a real deployment.
func (w *worker) build() error {
	cfg := w.s.cfg
	if cfg.PoolWorkers > 0 {
		w.pool = parallel.NewPool(cfg.PoolWorkers)
	}
	m := w.s.model

	if cfg.Precision == F32 {
		m.convert32()
		lvl := cfg.Level.KernelLevel()
		switch m.kind {
		case kindAE:
			w.ae32 = autoencoder.NewInference32(w.pool, lvl, m.aeCfg, cfg.MaxBatch, m.ae32)
		case kindRBM:
			w.rb32 = rbm.NewInference32(w.pool, lvl, m.rbmCfg, cfg.MaxBatch, m.rb32)
		case kindMLP:
			w.ml32 = mlp.NewInference32(w.pool, lvl, m.mlpCfg, cfg.MaxBatch, m.ml32)
		case kindConv:
			w.cv32 = convnet.NewInference32(w.pool, lvl, m.convCfg, cfg.MaxBatch, m.cv32)
		default:
			w.free()
			return fmt.Errorf("serve: unknown model kind %d", int(m.kind))
		}
		w.stage32 = tensor.NewMatrix32(cfg.MaxBatch, m.InputDim())
		return nil
	}

	dev := device.New(cfg.Arch, true, w.pool)
	w.ctx = core.NewContext(dev, cfg.Level, cfg.Cores, cfg.Seed+uint64(w.slot))

	var err error
	switch m.kind {
	case kindAE:
		w.ae, err = autoencoder.NewInference(w.ctx, m.aeCfg, cfg.MaxBatch, m.ae)
	case kindRBM:
		w.rb, err = rbm.NewInference(w.ctx, m.rbmCfg, cfg.MaxBatch, m.rb)
	case kindMLP:
		w.ml, err = mlp.NewInference(w.ctx, m.mlpCfg, cfg.MaxBatch, m.ml)
	case kindConv:
		w.cv, err = convnet.NewInference(w.ctx, m.convCfg, cfg.MaxBatch, m.cv)
	default:
		err = fmt.Errorf("serve: unknown model kind %d", int(m.kind))
	}
	if err != nil {
		w.free()
		return err
	}
	w.x, err = dev.Alloc(cfg.MaxBatch, m.InputDim())
	if err != nil {
		w.free()
		return err
	}
	w.stage = tensor.NewMatrix(cfg.MaxBatch, m.InputDim())
	if cfg.Faults.Rate > 0 {
		if err := dev.EnableFaults(workerFaultConfig(cfg.Faults, w.slot, w.restarts)); err != nil {
			w.free()
			return err
		}
	}
	return nil
}

// loop drains the dispatch channel until the server closes it, handing
// faulted batches to the supervisor. A retired worker normally exits and
// leaves the channel to the survivors; the last retiree instead stays
// behind as the drainer, completing everything with typed errors.
func (w *worker) loop() {
	defer w.s.wg.Done()
	defer w.freeQuiet()
	for batch := range w.s.batches {
		// Re-dispatched batches already left the admission queue's
		// accounting when their first worker received them.
		if !batch[0].redispatched {
			w.s.mu.Lock()
			w.s.queued -= len(batch)
			w.s.notFull.Broadcast()
			recordQueueDepth(w.s.queued)
			w.s.mu.Unlock()
		}
		if w.retired {
			w.s.failBatch(batch, w.faultError(w.cause))
			continue
		}
		if err := w.runSafe(batch); err != nil {
			if !w.handleFault(batch, err) {
				return
			}
		}
	}
}

// runSafe executes one batch with the panic boundary the supervisor
// relies on: any panic escaping the forward path (a device invariant
// tripped mid-batch, a kernel bug) surfaces as an error instead of
// killing the process.
func (w *worker) runSafe(batch []*request) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: worker panic: %v", p)
		}
	}()
	if w.stage32 != nil {
		w.run32(batch)
		return nil
	}
	return w.run(batch)
}

// run executes one homogeneous batch on the f64 device path: stage the
// rows, one CopyIn, the batched device forward pass on the [0,n) view, one
// CopyOut, then complete every request. Per-row results are independent of
// the batch composition (GEMM partitions and reduces per output row), so
// coalescing never changes an answer bit. Transfer faults that survive
// retryTransfer escalate to the caller (the supervisor); the batch is NOT
// completed here in that case.
func (w *worker) run(batch []*request) error {
	op := batch[0].op
	n := len(batch)
	for i, r := range batch {
		copy(w.stage.RowView(i), r.in)
	}
	dev := w.ctx.Dev
	if err := w.retryTransfer(func() error {
		_, err := dev.TryCopyIn(w.x, w.stage, 0)
		return err
	}); err != nil {
		return err
	}
	xv := w.x
	if n < w.x.Rows {
		xv = w.x.Slice(0, n)
	}

	var out *device.Buffer
	switch {
	case w.ae != nil:
		if op == OpEncode {
			out = w.ae.Encode(xv)
		} else {
			out = w.ae.Reconstruct(xv)
		}
	case w.rb != nil:
		if op == OpEncode {
			out = w.rb.Encode(xv)
		} else {
			out = w.rb.Reconstruct(xv)
		}
	case w.cv != nil:
		out = w.cv.Infer(xv)
	default:
		out = w.ml.Infer(xv)
	}

	res := tensor.NewMatrix(n, out.Cols)
	if err := w.retryTransfer(func() error {
		_, err := dev.TryCopyOut(out, res)
		return err
	}); err != nil {
		return err
	}
	w.complete64(batch, res)
	return nil
}

// retryTransfer runs one staging transfer with the serve-level retry on
// top of the device's own: a transient *TransferError (the device already
// exhausted Faults.MaxRetries) is re-attempted up to Config.FaultRetries
// times; permanent faults and exhaustion escalate to the supervisor.
func (w *worker) retryTransfer(attempt func() error) error {
	for tries := 0; ; tries++ {
		err := attempt()
		if err == nil {
			return nil
		}
		var terr *device.TransferError
		if !errors.As(err, &terr) || terr.Permanent || tries >= w.s.cfg.FaultRetries {
			return err
		}
		w.s.st.faultRetries.Add(1)
		recordFaultRetry()
	}
}

// run32 executes one homogeneous batch on the reduced-precision host path.
// Inputs round to float32 as they stage; the forward pass runs the packed
// f32 kernels on the worker's pool; outputs widen back to float64 on
// completion, so callers see the same []float64 surface as the f64 path.
// As with the device path, per-row results are batch-composition
// independent and bit-deterministic for a fixed worker pool size. No
// device is in the loop, so the fault model does not apply.
func (w *worker) run32(batch []*request) {
	op := batch[0].op
	n := len(batch)
	for i, r := range batch {
		tensor.Round32(w.stage32.RowView(i), r.in)
	}
	xv := w.stage32.RowsView(0, n)

	var out *tensor.Matrix32
	switch {
	case w.ae32 != nil:
		if op == OpEncode {
			out = w.ae32.Encode(xv)
		} else {
			out = w.ae32.Reconstruct(xv)
		}
	case w.rb32 != nil:
		if op == OpEncode {
			out = w.rb32.Encode(xv)
		} else {
			out = w.rb32.Reconstruct(xv)
		}
	case w.cv32 != nil:
		out = w.cv32.Infer(xv)
	default:
		out = w.ml32.Infer(xv)
	}

	now := time.Now()
	for i, r := range batch {
		o := make([]float64, out.Cols)
		tensor.Widen64(o, out.RowView(i))
		w.s.finishRequest(r, o, nil, now)
	}
}

// complete64 copies the device results out to the batch's requests.
func (w *worker) complete64(batch []*request, res *tensor.Matrix) {
	now := time.Now()
	for i, r := range batch {
		o := append([]float64(nil), res.RowView(i)...)
		w.s.finishRequest(r, o, nil, now)
	}
}

// free releases the worker's device resources and pool. The f32 path holds
// no device; its replicas are plain host memory.
func (w *worker) free() {
	if w.ae != nil {
		w.ae.Free()
		w.ae = nil
	}
	if w.rb != nil {
		w.rb.Free()
		w.rb = nil
	}
	if w.ml != nil {
		w.ml.Free()
		w.ml = nil
	}
	if w.cv != nil {
		w.cv.Free()
		w.cv = nil
	}
	if w.x != nil {
		w.ctx.Dev.Free(w.x)
		w.x = nil
	}
	w.ae32, w.rb32, w.ml32, w.cv32 = nil, nil, nil, nil
	if w.pool != nil {
		w.pool.Close()
		w.pool = nil
	}
}

// freeQuiet is free for teardown paths that must survive a device in an
// arbitrary post-fault state: a panic during release is swallowed (the
// simulated resources are process-local; leaking them beats crashing the
// supervisor or hanging Close's wg.Wait).
func (w *worker) freeQuiet() {
	defer func() { _ = recover() }()
	w.free()
}
