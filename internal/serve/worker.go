package serve

import (
	"time"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/mlp"
	"phideep/internal/parallel"
	"phideep/internal/rbm"
	"phideep/internal/tensor"
)

// worker owns one simulated device (devices are not safe for concurrent
// use) with a forward-only model replica and executes homogeneous request
// batches on it. All workers share the server's immutable Model snapshot
// read-only; each uploads its own device copy at construction.
type worker struct {
	s    *Server
	ctx  *blas.Context
	pool *parallel.Pool

	ae *autoencoder.Model
	rb *rbm.Model
	ml *mlp.Model

	// x is the staging input buffer, MaxBatch×InputDim; partial batches
	// compute on its [0,n) row view. stage is its host mirror — CopyIn
	// transfers whole buffers, so short batches ride in with stale tail
	// rows that the sliced forward pass never reads.
	x     *device.Buffer
	stage *tensor.Matrix
}

// newWorker builds worker i: private pool (optional), device, context and
// inference replica.
func newWorker(s *Server, i int) (*worker, error) {
	w := &worker{s: s}
	cfg := s.cfg
	if cfg.PoolWorkers > 0 {
		w.pool = parallel.NewPool(cfg.PoolWorkers)
	}
	dev := device.New(cfg.Arch, true, w.pool)
	w.ctx = core.NewContext(dev, cfg.Level, cfg.Cores, cfg.Seed+uint64(i))

	m := s.model
	var err error
	switch m.kind {
	case kindAE:
		w.ae, err = autoencoder.NewInference(w.ctx, m.aeCfg, cfg.MaxBatch, m.ae)
	case kindRBM:
		w.rb, err = rbm.NewInference(w.ctx, m.rbmCfg, cfg.MaxBatch, m.rb)
	default:
		w.ml, err = mlp.NewInference(w.ctx, m.mlpCfg, cfg.MaxBatch, m.ml)
	}
	if err != nil {
		w.free()
		return nil, err
	}
	w.x, err = dev.Alloc(cfg.MaxBatch, m.InputDim())
	if err != nil {
		w.free()
		return nil, err
	}
	w.stage = tensor.NewMatrix(cfg.MaxBatch, m.InputDim())
	return w, nil
}

// loop drains the dispatch channel until the server closes it.
func (w *worker) loop() {
	defer w.s.wg.Done()
	defer w.free()
	for batch := range w.s.batches {
		w.s.mu.Lock()
		w.s.queued -= len(batch)
		w.s.notFull.Broadcast()
		recordQueueDepth(w.s.queued)
		w.s.mu.Unlock()
		w.run(batch)
	}
}

// run executes one homogeneous batch: stage the rows, one CopyIn, the
// batched device forward pass on the [0,n) view, one CopyOut, then
// complete every request. Per-row results are independent of the batch
// composition (GEMM partitions and reduces per output row), so coalescing
// never changes an answer bit.
func (w *worker) run(batch []*request) {
	op := batch[0].op
	n := len(batch)
	for i, r := range batch {
		copy(w.stage.RowView(i), r.in)
	}
	dev := w.ctx.Dev
	dev.CopyIn(w.x, w.stage, 0)
	xv := w.x
	if n < w.x.Rows {
		xv = w.x.Slice(0, n)
	}

	var out *device.Buffer
	switch {
	case w.ae != nil:
		if op == OpEncode {
			out = w.ae.Encode(xv)
		} else {
			out = w.ae.Reconstruct(xv)
		}
	case w.rb != nil:
		if op == OpEncode {
			out = w.rb.Encode(xv)
		} else {
			out = w.rb.Reconstruct(xv)
		}
	default:
		out = w.ml.Infer(xv)
	}

	res := tensor.NewMatrix(n, out.Cols)
	dev.CopyOut(out, res)
	now := time.Now()
	for i, r := range batch {
		r.out = append([]float64(nil), res.RowView(i)...)
		lat := now.Sub(r.enq)
		w.s.st.completed.Add(1)
		w.s.st.latencyNanos.Add(lat.Nanoseconds())
		recordLatency(lat)
		close(r.done)
	}
}

// free releases the worker's device resources and pool.
func (w *worker) free() {
	if w.ae != nil {
		w.ae.Free()
		w.ae = nil
	}
	if w.rb != nil {
		w.rb.Free()
		w.rb = nil
	}
	if w.ml != nil {
		w.ml.Free()
		w.ml = nil
	}
	if w.x != nil {
		w.ctx.Dev.Free(w.x)
		w.x = nil
	}
	if w.pool != nil {
		w.pool.Close()
		w.pool = nil
	}
}
