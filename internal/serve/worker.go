package serve

import (
	"fmt"
	"time"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/convnet"
	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/mlp"
	"phideep/internal/parallel"
	"phideep/internal/rbm"
	"phideep/internal/tensor"
)

// worker executes homogeneous request batches on one of two forward paths,
// fixed at construction by Config.Precision:
//
//   - F64: a private simulated device (devices are not safe for concurrent
//     use) with a forward-only model replica, the exact path training ran.
//   - F32: the reduced-precision host path — a float32 inference replica
//     running the packed f32 kernels directly on the worker's pool, no
//     device in the loop. Weights are the model's shared f32 snapshot;
//     activations are private.
//
// All workers share the server's immutable Model snapshot read-only.
type worker struct {
	s    *Server
	ctx  *blas.Context
	pool *parallel.Pool

	ae *autoencoder.Model
	rb *rbm.Model
	ml *mlp.Model
	cv *convnet.Model

	ae32 *autoencoder.Inference32
	rb32 *rbm.Inference32
	ml32 *mlp.Inference32
	cv32 *convnet.Inference32

	// x is the staging input buffer, MaxBatch×InputDim; partial batches
	// compute on its [0,n) row view. stage is its host mirror — CopyIn
	// transfers whole buffers, so short batches ride in with stale tail
	// rows that the sliced forward pass never reads. stage32 plays the
	// same staging role for the f32 path, with the float64→float32
	// rounding folded into the row copy.
	x       *device.Buffer
	stage   *tensor.Matrix
	stage32 *tensor.Matrix32
}

// newWorker builds worker i: private pool (optional), then either the
// device-resident f64 replica or the host-side f32 replica.
func newWorker(s *Server, i int) (*worker, error) {
	w := &worker{s: s}
	cfg := s.cfg
	if cfg.PoolWorkers > 0 {
		w.pool = parallel.NewPool(cfg.PoolWorkers)
	}
	m := s.model

	if cfg.Precision == F32 {
		m.convert32()
		lvl := cfg.Level.KernelLevel()
		switch m.kind {
		case kindAE:
			w.ae32 = autoencoder.NewInference32(w.pool, lvl, m.aeCfg, cfg.MaxBatch, m.ae32)
		case kindRBM:
			w.rb32 = rbm.NewInference32(w.pool, lvl, m.rbmCfg, cfg.MaxBatch, m.rb32)
		case kindMLP:
			w.ml32 = mlp.NewInference32(w.pool, lvl, m.mlpCfg, cfg.MaxBatch, m.ml32)
		case kindConv:
			w.cv32 = convnet.NewInference32(w.pool, lvl, m.convCfg, cfg.MaxBatch, m.cv32)
		default:
			w.free()
			return nil, fmt.Errorf("serve: unknown model kind %d", int(m.kind))
		}
		w.stage32 = tensor.NewMatrix32(cfg.MaxBatch, m.InputDim())
		return w, nil
	}

	dev := device.New(cfg.Arch, true, w.pool)
	w.ctx = core.NewContext(dev, cfg.Level, cfg.Cores, cfg.Seed+uint64(i))

	var err error
	switch m.kind {
	case kindAE:
		w.ae, err = autoencoder.NewInference(w.ctx, m.aeCfg, cfg.MaxBatch, m.ae)
	case kindRBM:
		w.rb, err = rbm.NewInference(w.ctx, m.rbmCfg, cfg.MaxBatch, m.rb)
	case kindMLP:
		w.ml, err = mlp.NewInference(w.ctx, m.mlpCfg, cfg.MaxBatch, m.ml)
	case kindConv:
		w.cv, err = convnet.NewInference(w.ctx, m.convCfg, cfg.MaxBatch, m.cv)
	default:
		err = fmt.Errorf("serve: unknown model kind %d", int(m.kind))
	}
	if err != nil {
		w.free()
		return nil, err
	}
	w.x, err = dev.Alloc(cfg.MaxBatch, m.InputDim())
	if err != nil {
		w.free()
		return nil, err
	}
	w.stage = tensor.NewMatrix(cfg.MaxBatch, m.InputDim())
	return w, nil
}

// loop drains the dispatch channel until the server closes it.
func (w *worker) loop() {
	defer w.s.wg.Done()
	defer w.free()
	for batch := range w.s.batches {
		w.s.mu.Lock()
		w.s.queued -= len(batch)
		w.s.notFull.Broadcast()
		recordQueueDepth(w.s.queued)
		w.s.mu.Unlock()
		if w.stage32 != nil {
			w.run32(batch)
		} else {
			w.run(batch)
		}
	}
}

// run executes one homogeneous batch on the f64 device path: stage the
// rows, one CopyIn, the batched device forward pass on the [0,n) view, one
// CopyOut, then complete every request. Per-row results are independent of
// the batch composition (GEMM partitions and reduces per output row), so
// coalescing never changes an answer bit.
func (w *worker) run(batch []*request) {
	op := batch[0].op
	n := len(batch)
	for i, r := range batch {
		copy(w.stage.RowView(i), r.in)
	}
	dev := w.ctx.Dev
	dev.CopyIn(w.x, w.stage, 0)
	xv := w.x
	if n < w.x.Rows {
		xv = w.x.Slice(0, n)
	}

	var out *device.Buffer
	switch {
	case w.ae != nil:
		if op == OpEncode {
			out = w.ae.Encode(xv)
		} else {
			out = w.ae.Reconstruct(xv)
		}
	case w.rb != nil:
		if op == OpEncode {
			out = w.rb.Encode(xv)
		} else {
			out = w.rb.Reconstruct(xv)
		}
	case w.cv != nil:
		out = w.cv.Infer(xv)
	default:
		out = w.ml.Infer(xv)
	}

	res := tensor.NewMatrix(n, out.Cols)
	dev.CopyOut(out, res)
	w.complete64(batch, res)
}

// run32 executes one homogeneous batch on the reduced-precision host path.
// Inputs round to float32 as they stage; the forward pass runs the packed
// f32 kernels on the worker's pool; outputs widen back to float64 on
// completion, so callers see the same []float64 surface as the f64 path.
// As with the device path, per-row results are batch-composition
// independent and bit-deterministic for a fixed worker pool size.
func (w *worker) run32(batch []*request) {
	op := batch[0].op
	n := len(batch)
	for i, r := range batch {
		tensor.Round32(w.stage32.RowView(i), r.in)
	}
	xv := w.stage32.RowsView(0, n)

	var out *tensor.Matrix32
	switch {
	case w.ae32 != nil:
		if op == OpEncode {
			out = w.ae32.Encode(xv)
		} else {
			out = w.ae32.Reconstruct(xv)
		}
	case w.rb32 != nil:
		if op == OpEncode {
			out = w.rb32.Encode(xv)
		} else {
			out = w.rb32.Reconstruct(xv)
		}
	case w.cv32 != nil:
		out = w.cv32.Infer(xv)
	default:
		out = w.ml32.Infer(xv)
	}

	now := time.Now()
	for i, r := range batch {
		r.out = make([]float64, out.Cols)
		tensor.Widen64(r.out, out.RowView(i))
		w.finish(r, now)
	}
}

// complete64 copies the device results out to the batch's requests.
func (w *worker) complete64(batch []*request, res *tensor.Matrix) {
	now := time.Now()
	for i, r := range batch {
		r.out = append([]float64(nil), res.RowView(i)...)
		w.finish(r, now)
	}
}

// finish closes out one answered request and records its latency.
func (w *worker) finish(r *request, now time.Time) {
	lat := now.Sub(r.enq)
	w.s.st.completed.Add(1)
	w.s.st.latencyNanos.Add(lat.Nanoseconds())
	recordLatency(lat)
	close(r.done)
}

// free releases the worker's device resources and pool. The f32 path holds
// no device; its replicas are plain host memory.
func (w *worker) free() {
	if w.ae != nil {
		w.ae.Free()
		w.ae = nil
	}
	if w.rb != nil {
		w.rb.Free()
		w.rb = nil
	}
	if w.ml != nil {
		w.ml.Free()
		w.ml = nil
	}
	if w.cv != nil {
		w.cv.Free()
		w.cv = nil
	}
	if w.x != nil {
		w.ctx.Dev.Free(w.x)
		w.x = nil
	}
	w.ae32, w.rb32, w.ml32, w.cv32 = nil, nil, nil, nil
	if w.pool != nil {
		w.pool.Close()
		w.pool = nil
	}
}
