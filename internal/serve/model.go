package serve

import (
	"bytes"
	"fmt"
	"sync"

	"phideep/internal/autoencoder"
	"phideep/internal/convnet"
	"phideep/internal/core"
	"phideep/internal/mlp"
	"phideep/internal/rbm"
)

// modelKind discriminates the served model family.
type modelKind int

const (
	kindAE modelKind = iota
	kindRBM
	kindMLP
	kindConv
)

// Model is an immutable, host-side snapshot of a trained model ready to be
// served. The constructors deep-copy the parameters (copy-on-load), so the
// source — a live training run, a checkpoint buffer — can keep mutating
// without racing the server. Workers upload the snapshot into their private
// devices at startup and never write it.
type Model struct {
	kind modelKind

	aeCfg   autoencoder.Config
	rbmCfg  rbm.Config
	mlpCfg  mlp.Config
	convCfg convnet.Config

	ae *autoencoder.Params
	rb *rbm.Params
	ml *mlp.Params
	cv *convnet.Params

	// Float32 weight snapshots for Precision F32, converted lazily (first
	// worker that needs them) and exactly once, then shared read-only by
	// every reduced-precision replica.
	once32 sync.Once
	ae32   *autoencoder.Params32
	rb32   *rbm.Params32
	ml32   *mlp.Params32
	cv32   *convnet.Params32
}

// convert32 rounds the model's parameters to float32 once; subsequent calls
// are free. The snapshot is immutable like the f64 parameters it mirrors.
func (m *Model) convert32() {
	m.once32.Do(func() {
		switch m.kind {
		case kindAE:
			m.ae32 = m.ae.To32()
		case kindRBM:
			m.rb32 = m.rb.To32()
		case kindMLP:
			m.ml32 = m.ml.To32()
		case kindConv:
			m.cv32 = m.cv.To32()
		}
	})
}

// Autoencoder wraps autoencoder parameters for serving (Encode and
// Reconstruct). p is deep-copied; nil initializes fresh parameters from
// cfg.Seed (useful for load tests without a training run).
func Autoencoder(cfg autoencoder.Config, p *autoencoder.Params) *Model {
	if p == nil {
		p = autoencoder.NewParams(cfg, cfg.Seed)
	} else {
		p = p.Clone()
	}
	return &Model{kind: kindAE, aeCfg: cfg, ae: p}
}

// RBM wraps RBM parameters for serving (Encode and mean-field
// Reconstruct). p is deep-copied; nil initializes from cfg.Seed.
func RBM(cfg rbm.Config, p *rbm.Params) *Model {
	if p == nil {
		p = rbm.NewParams(cfg, cfg.Seed)
	} else {
		p = p.Clone()
	}
	return &Model{kind: kindRBM, rbmCfg: cfg, rb: p}
}

// MLP wraps classifier parameters for serving (Predict). p is deep-copied;
// nil initializes from cfg.Seed.
func MLP(cfg mlp.Config, p *mlp.Params) *Model {
	if p == nil {
		p = mlp.NewParams(cfg, cfg.Seed)
	} else {
		p = cloneMLP(cfg, p)
	}
	return &Model{kind: kindMLP, mlpCfg: cfg, ml: p}
}

// Convnet wraps convolutional-classifier parameters for serving (Predict).
// p is deep-copied; nil initializes from cfg.Seed.
func Convnet(cfg convnet.Config, p *convnet.Params) *Model {
	if p == nil {
		p = convnet.NewParams(cfg, cfg.Seed)
	} else {
		p = p.Clone()
	}
	return &Model{kind: kindConv, convCfg: cfg, cv: p}
}

// cloneMLP deep-copies classifier parameters (mlp.Params has no Clone).
func cloneMLP(cfg mlp.Config, p *mlp.Params) *mlp.Params {
	c := mlp.NewParams(cfg, 0)
	for l := range p.W {
		c.W[l] = p.W[l].Clone()
		c.B[l] = p.B[l].Clone()
	}
	return c
}

// AutoencoderFromCheckpoint loads autoencoder parameters from a PHCK
// checkpoint written by core.Trainer or phitrain. The checkpoint stores
// only the flat parameter data; cfg must describe the geometry it was
// trained with.
func AutoencoderFromCheckpoint(cfg autoencoder.Config, path string) (*Model, error) {
	c, err := core.ReadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	p := autoencoder.NewParams(cfg, 0)
	// The model blob is the parameter set followed by the trainer's RNG
	// state, which serving does not need.
	if err := p.Load(bytes.NewReader(c.Model)); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return &Model{kind: kindAE, aeCfg: cfg, ae: p}, nil
}

// RBMFromCheckpoint loads RBM parameters from a PHCK checkpoint.
func RBMFromCheckpoint(cfg rbm.Config, path string) (*Model, error) {
	c, err := core.ReadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	p := rbm.NewParams(cfg, 0)
	if err := p.Load(bytes.NewReader(c.Model)); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return &Model{kind: kindRBM, rbmCfg: cfg, rb: p}, nil
}

// MLPFromCheckpoint loads classifier parameters from a PHCK checkpoint.
func MLPFromCheckpoint(cfg mlp.Config, path string) (*Model, error) {
	c, err := core.ReadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	p := mlp.NewParams(cfg, 0)
	if err := p.Load(bytes.NewReader(c.Model)); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return &Model{kind: kindMLP, mlpCfg: cfg, ml: p}, nil
}

// ConvnetFromCheckpoint loads convnet parameters from a PHCK checkpoint.
func ConvnetFromCheckpoint(cfg convnet.Config, path string) (*Model, error) {
	c, err := core.ReadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	p := convnet.NewParams(cfg, 0)
	if err := p.Load(bytes.NewReader(c.Model)); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return &Model{kind: kindConv, convCfg: cfg, cv: p}, nil
}

// Kind names the model family: "autoencoder", "rbm", "mlp" or "convnet".
func (m *Model) Kind() string {
	switch m.kind {
	case kindAE:
		return "autoencoder"
	case kindRBM:
		return "rbm"
	case kindMLP:
		return "mlp"
	case kindConv:
		return "convnet"
	default:
		return fmt.Sprintf("kind(%d)", int(m.kind))
	}
}

// InputDim is the expected request vector length.
func (m *Model) InputDim() int {
	switch m.kind {
	case kindAE:
		return m.aeCfg.Visible
	case kindRBM:
		return m.rbmCfg.Visible
	case kindConv:
		return m.convCfg.InputDim()
	default:
		return m.mlpCfg.Sizes[0]
	}
}

// OutputDim is the response vector length for op.
func (m *Model) OutputDim(op Op) int {
	switch m.kind {
	case kindAE:
		if op == OpEncode {
			return m.aeCfg.Hidden
		}
		return m.aeCfg.Visible
	case kindRBM:
		if op == OpEncode {
			return m.rbmCfg.Hidden
		}
		return m.rbmCfg.Visible
	case kindConv:
		return m.convCfg.Classes
	default:
		return m.mlpCfg.Sizes[len(m.mlpCfg.Sizes)-1]
	}
}

// Ops lists the operations this model answers.
func (m *Model) Ops() []Op {
	if m.kind == kindMLP || m.kind == kindConv {
		return []Op{OpPredict}
	}
	return []Op{OpEncode, OpReconstruct}
}

// supports reports whether op is valid for the model family.
func (m *Model) supports(op Op) bool {
	if m.kind == kindMLP || m.kind == kindConv {
		return op == OpPredict
	}
	return op == OpEncode || op == OpReconstruct
}

// hostInfer answers one request on the calling goroutine with the scalar
// host reference — the Degrade path. Bit-identical to the device path at
// core.Baseline; toleranced (≈1e-12 relative) against the blocked levels,
// which reorder the reduction. An op the model family does not implement
// returns *UnsupportedOpError rather than falling through to a different
// family's forward pass.
func (m *Model) hostInfer(op Op, x []float64) ([]float64, error) {
	if !m.supports(op) {
		return nil, &UnsupportedOpError{Kind: m.Kind(), Op: op}
	}
	out := make([]float64, m.OutputDim(op))
	switch m.kind {
	case kindAE:
		if op == OpEncode {
			m.ae.Encode(x, out)
		} else {
			m.ae.Reconstruct(x, out, m.aeCfg.Tied)
		}
	case kindRBM:
		if op == OpEncode {
			m.rb.Encode(x, out)
		} else {
			m.rb.Reconstruct(x, out, m.rbmCfg.GaussianVisible)
		}
	case kindMLP:
		copy(out, m.ml.PredictProbs(m.mlpCfg, x))
	case kindConv:
		copy(out, m.cv.PredictProbs(m.convCfg, x))
	default:
		return nil, &UnsupportedOpError{Kind: m.Kind(), Op: op}
	}
	return out, nil
}
