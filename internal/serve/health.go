package serve

import (
	"errors"
	"fmt"
	"time"
)

// Health is the server's availability state machine, driven by the worker
// supervisor and the drain sequence:
//
//	Healthy ──(a worker slot retires)──► Degraded ──(last slot retires)──► Down
//	   │                                     │
//	   └────────────(Drain/Close)────────────┴──► Draining ──► Down
//
// Healthy means every configured worker slot is live. Degraded means at
// least one slot exhausted its restart budget and retired, but survivors
// keep serving. Draining means admission is closed while in-flight work
// completes (graceful shutdown). Down means no live replica remains: new
// requests fail fast with ErrDown and already-admitted ones complete with
// a typed *WorkerFaultError — never a hang. States only move rightward;
// a Down server does not heal (rebuild happens one level up, by
// constructing a fresh Server from the still-valid Model snapshot).
type Health int

const (
	// Healthy: all configured worker slots live.
	Healthy Health = iota
	// Degraded: at least one slot retired; survivors keep serving.
	Degraded
	// Draining: admission closed, in-flight requests completing.
	Draining
	// Down: no live worker slot remains.
	Down
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Draining:
		return "draining"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// ErrDeadline is returned by serving calls whose request deadline
// (Config.RequestTimeout, or a ctx deadline on the *Context variants)
// expired before a worker's answer landed. The abandoned request stays in
// its batch; the late result is discarded safely when it arrives.
var ErrDeadline = errors.New("serve: request deadline exceeded")

// ErrDown is returned by serving calls once every worker slot has retired
// (its restart budget exhausted by repeated faults): with no replica left
// to answer, failing fast beats queueing forever.
var ErrDown = errors.New("serve: no live worker replica")

// WorkerFaultError reports a request completed by the supervisor instead
// of a worker: the executing replica hit a worker-fatal fault — a
// permanent device transfer fault, transient-retry exhaustion, or a panic
// in the batch path — and the batch could not be (re-)dispatched to a
// healthy replica. Completing with this error, rather than dropping the
// request, is the contract that no admitted request ever hangs.
type WorkerFaultError struct {
	// Worker is the faulted slot index.
	Worker int
	// Restarts is the restart count the slot had consumed when it failed
	// the batch.
	Restarts int
	// Cause is the underlying condition: a *device.TransferError or a
	// recovered panic wrapped as an error.
	Cause error
}

// Error implements error.
func (e *WorkerFaultError) Error() string {
	return fmt.Sprintf("serve: worker %d fault (restarts %d): %v", e.Worker, e.Restarts, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As (a *device.TransferError keeps
// its Permanent flag visible through the chain).
func (e *WorkerFaultError) Unwrap() error { return e.Cause }

// healthLocked computes the current state; caller holds s.mu.
func (s *Server) healthLocked() Health {
	switch {
	case s.live == 0:
		return Down
	case s.draining || s.closed:
		return Draining
	case s.live < s.cfg.Workers:
		return Degraded
	default:
		return Healthy
	}
}

// Health returns the server's current availability state.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthLocked()
}

// Drain gracefully stops the server's intake: admission closes (new calls
// fail with ErrClosed, /healthz flips to draining), the pending queues
// flush immediately, and Drain waits until every already-admitted request
// has completed — including deadline-abandoned ones whose discarded
// results are still in flight — or until timeout elapses, whichever is
// first. A timeout of 0 waits indefinitely. Drain does not release the
// workers; call Close afterwards (which returns quickly once drained).
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if !s.closed && !s.draining {
		s.draining = true
		for op := 0; op < numOps; op++ {
			s.flushLocked(Op(op), false)
		}
		s.notFull.Broadcast()
		recordHealth(s.healthLocked())
	}
	s.mu.Unlock()

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return fmt.Errorf("serve: drain deadline after %v: %d request(s) still in flight", timeout, n)
		}
		time.Sleep(200 * time.Microsecond)
	}
}
