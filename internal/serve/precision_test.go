package serve

import (
	"math"
	"testing"
	"time"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/mlp"
	"phideep/internal/rbm"
)

// End-to-end cross-precision equivalence: a server at Precision F32 must
// answer Encode/Reconstruct/Predict within float32-rounding tolerance of
// the same model served at F64, and its answers must be bit-identical
// across repeated requests and servers (the weights round once, the k
// summation order is fixed). The tolerance follows the kernel suite's
// bound — per-element error grows with the reduction length, which here is
// the layer widths (≤ a few hundred), so 1e-4 absolute is generous without
// masking real defects (a wrong weight or transposed panel shows up at
// 1e-1 grade).
const precTol = 1e-4

// servePair builds f64 and f32 servers over one model snapshot and runs
// every op of the model on both, comparing per element.
func comparePrecisions(t *testing.T, m *Model, inputs [][]float64) {
	t.Helper()
	cfg := Config{Level: core.Improved, MaxBatch: 4, MaxWait: 200 * time.Microsecond, Workers: 2, PoolWorkers: 2}

	s64, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s64.Close()
	cfg.Precision = F32
	s32, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s32.Close()

	call := func(s *Server, op Op, x []float64) []float64 {
		t.Helper()
		var out []float64
		var err error
		switch op {
		case OpEncode:
			out, err = s.Encode(x)
		case OpReconstruct:
			out, err = s.Reconstruct(x)
		default:
			out, err = s.Predict(x)
		}
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return out
	}

	for _, op := range m.Ops() {
		for i, x := range inputs {
			want := call(s64, op, x)
			got := call(s32, op, x)
			if len(got) != len(want) {
				t.Fatalf("%s input %d: length %d vs %d", op, i, len(got), len(want))
			}
			for j := range want {
				if d := math.Abs(got[j] - want[j]); d > precTol {
					t.Fatalf("%s input %d: out[%d] = %v (f32) vs %v (f64), diff %g", op, i, j, got[j], want[j], d)
				}
			}
			// The f32 answer must be reproducible bit-for-bit: same
			// rounded weights, same fixed-order reduction.
			again := call(s32, op, x)
			for j := range got {
				if again[j] != got[j] {
					t.Fatalf("%s input %d: repeat out[%d] = %v, first %v — f32 path not deterministic", op, i, j, again[j], got[j])
				}
			}
		}
	}

	if st := s32.Stats(); st.Precision != "f32" {
		t.Fatalf("f32 server reports precision %q", st.Precision)
	}
	if st := s64.Stats(); st.Precision != "f64" {
		t.Fatalf("f64 server reports precision %q", st.Precision)
	}
}

func TestPrecisionF32MatchesF64Autoencoder(t *testing.T) {
	for _, tied := range []bool{false, true} {
		cfg := autoencoder.Config{Visible: 23, Hidden: 9, Tied: tied}
		m := Autoencoder(cfg, autoencoder.NewParams(cfg, 7))
		comparePrecisions(t, m, randExamples(6, cfg.Visible, 11))
	}
}

func TestPrecisionF32MatchesF64RBM(t *testing.T) {
	for _, gaussian := range []bool{false, true} {
		cfg := rbm.Config{Visible: 19, Hidden: 13, GaussianVisible: gaussian}
		m := RBM(cfg, rbm.NewParams(cfg, 5))
		comparePrecisions(t, m, randExamples(6, cfg.Visible, 13))
	}
}

func TestPrecisionF32MatchesF64MLP(t *testing.T) {
	cfg := mlp.Config{Sizes: []int{17, 11, 5}}
	m := MLP(cfg, mlp.NewParams(cfg, 3))
	comparePrecisions(t, m, randExamples(6, cfg.Sizes[0], 17))

	// Softmax output must still be a distribution after the f32 pass.
	s32, err := New(m, Config{Precision: F32})
	if err != nil {
		t.Fatal(err)
	}
	defer s32.Close()
	out, err := s32.Predict(randExamples(1, cfg.Sizes[0], 19)[0])
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

// TestPrecisionValidation pins config validation: only F64 and F32 exist.
func TestPrecisionValidation(t *testing.T) {
	cfg := aeTestConfig()
	m := Autoencoder(cfg, autoencoder.NewParams(cfg, 1))
	if _, err := New(m, Config{Precision: Precision(9)}); err == nil {
		t.Fatal("no error for unknown precision")
	}
	if F64.String() != "f64" || F32.String() != "f32" {
		t.Fatalf("precision names %q/%q", F64, F32)
	}
}
