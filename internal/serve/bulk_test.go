package serve

import (
	"context"
	"errors"
	"strings"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/data"
	"phideep/internal/feed"
	"phideep/internal/mlp"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// bulkFeed builds a single-consumer feed over src for bulk scoring.
func bulkFeed(t *testing.T, src data.Source, batch, chunk, total int) (*feed.Feed, *feed.Consumer) {
	t.Helper()
	p, err := data.PlanChunks(data.PlanRequest{SourceLen: src.Len(), Batch: batch, ChunkExamples: chunk})
	if err != nil {
		t.Fatal(err)
	}
	cfg := feed.Config{Plan: p, TotalChunks: total}
	var f *feed.Feed
	if l, ok := src.(data.Labeled); ok {
		f, err = feed.NewLabeled(l, cfg)
	} else {
		f, err = feed.New(src, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Subscribe("scorer")
	if err != nil {
		t.Fatal(err)
	}
	return f, c
}

// randSource builds an in-memory source of n random dim-wide examples.
func randSource(n, dim int, seed uint64) data.InMemory {
	r := rng.New(seed)
	x := tensor.NewMatrix(n, dim)
	for i := range x.Data {
		x.Data[i] = r.Float64()
	}
	return data.InMemory{X: x}
}

// TestScoreFeedMatchesSingleRequests: the bulk path answers every source
// row once, in order, with exactly the answer the single-request path
// gives for the same input.
func TestScoreFeedMatchesSingleRequests(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	src := randSource(48, cfg.Visible, 3)
	f, c := bulkFeed(t, src, 8, 24, 2) // horizon = one pass
	got := make(map[int][]float64)
	res, err := srv.ScoreFeed(OpEncode, c, func(ex int, scores []float64) {
		if _, dup := got[ex]; dup {
			t.Fatalf("example %d scored twice", ex)
		}
		got[ex] = scores
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 2 || res.Rows != 48 || res.Failed != 0 {
		t.Fatalf("bulk result %+v", res)
	}
	if len(got) != src.Len() {
		t.Fatalf("scored %d of %d examples", len(got), src.Len())
	}
	for ex, scores := range got {
		want, err := srv.Encode(src.X.RowView(ex))
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if scores[j] != want[j] {
				t.Fatalf("example %d: bulk %v vs single %v", ex, scores, want)
			}
		}
	}
	// Every lease committed; nothing outstanding.
	if s := f.Stats(); s.Leases != 2 || s.Commits != 2 || s.Outstanding != 0 {
		t.Fatalf("feed stats %+v", s)
	}
}

// TestScoreFeedAccuracy: a labeled feed plus OpPredict yields the free
// accuracy sweep, and the count matches a hand-rolled argmax loop.
func TestScoreFeedAccuracy(t *testing.T) {
	src := data.NewDigits(8, 60, 4, 0.05)
	mcfg := mlp.Config{Sizes: []int{src.Dim(), 10, 10}, Lambda: 1e-4}
	srv, err := New(MLP(mcfg, mlp.NewParams(mcfg, 2)), Config{MaxBatch: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	_, c := bulkFeed(t, src, 10, 30, 2)
	want := 0
	res, err := srv.ScoreFeed(OpPredict, c, func(ex int, scores []float64) {
		if argmax(scores) == src.Label(ex) {
			want++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Labeled {
		t.Fatal("labeled feed not detected")
	}
	if res.Correct != want {
		t.Fatalf("accuracy %d, callback counted %d", res.Correct, want)
	}
	if res.Rows != 60 {
		t.Fatalf("rows %d", res.Rows)
	}
}

// TestScoreFeedUnboundedStopsAfterOnePass: without a TotalChunks horizon
// the sweep stops after one full pass instead of looping the source.
func TestScoreFeedUnboundedStopsAfterOnePass(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{MaxBatch: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	src := randSource(36, cfg.Visible, 3)
	_, c := bulkFeed(t, src, 6, 12, 0) // unbounded
	res, err := srv.ScoreFeed(OpEncode, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 3 || res.Rows != 36 {
		t.Fatalf("one pass over 36 examples in 12-chunks: %+v", res)
	}
}

// TestScoreFeedValidation covers the rejection surface.
func TestScoreFeedValidation(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := srv.ScoreFeed(OpEncode, nil, nil); err == nil {
		t.Fatal("nil consumer accepted")
	}
	_, c := bulkFeed(t, data.Null{D: cfg.Visible, N: 40}, 4, 8, 1)
	var uerr *UnsupportedOpError
	if _, err := srv.ScoreFeed(OpPredict, c, nil); !errors.As(err, &uerr) {
		t.Fatalf("unsupported op: %v", err)
	}
	_, wide := bulkFeed(t, data.Null{D: cfg.Visible + 1, N: 40}, 4, 8, 1)
	if _, err := srv.ScoreFeed(OpEncode, wide, nil); err == nil || !strings.Contains(err.Error(), "wide") {
		t.Fatalf("dim mismatch: %v", err)
	}
}

// TestScoreFeedClosedServerAborts: closing the server mid-sweep returns
// the partial result with an error instead of hanging or panicking.
func TestScoreFeedClosedServerAborts(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	_, c := bulkFeed(t, data.Null{D: cfg.Visible, N: 40}, 4, 8, 2)
	res, err := srv.ScoreFeed(OpEncode, c, nil)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if res == nil || res.Rows != 0 || res.Failed == 0 {
		t.Fatalf("partial result %+v", res)
	}
}

// TestScoreFeedContextCancel: cancellation stops the sweep between chunks.
func TestScoreFeedContextCancel(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	_, c := bulkFeed(t, data.Null{D: cfg.Visible, N: 400}, 4, 8, 0)
	n := 0
	_, err = srv.ScoreFeedContext(ctx, OpEncode, c, func(int, []float64) {
		n++
		if n == 8 {
			cancel()
		}
	})
	if err == nil || (!errors.Is(err, context.Canceled) && !errors.Is(err, ErrDeadline)) {
		t.Fatalf("want cancellation error, got %v", err)
	}
	if n >= 400 {
		t.Fatal("sweep ran to completion despite cancellation")
	}
}
