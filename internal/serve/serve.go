// Package serve is phideep's online-inference subsystem: it turns a
// trained model into a server that answers concurrent single-example
// encode/reconstruct/predict requests. The ROADMAP north star is a system
// "serving heavy traffic from millions of users"; this package supplies
// the missing half of that story on top of the training stack.
//
// # Architecture
//
// Requests are coalesced by a dynamic micro-batcher: each operation has a
// pending queue that flushes to a worker either when it reaches
// Config.MaxBatch or when the oldest request has waited Config.MaxWait,
// whichever comes first — the batching lever that CHAOS (Viebke et al.)
// shows keeps many-core utilization high, applied to latency-bound
// traffic. Flushed batches execute on a pool of device-bound workers,
// each owning a private simulated device (device.Device is not safe for
// concurrent use) with a forward-only model replica built by the model
// packages' NewInference constructors, running the exact blas/kernels
// forward path of training at any core OptLevel.
//
// At Config.Precision F32 the workers skip the simulated device and run
// the reduced-precision host path instead: one float32 weight snapshot is
// converted per model (lazily, shared read-only) and each worker executes
// the packed f32 kernels with a private activation workspace. The request
// and response surface stays []float64 — rounding happens at the staging
// boundary — and answers differ from the f64 path only by float32
// rounding, bounded by the cross-precision equivalence suite.
//
// Admission is controlled by a bounded queue of Config.QueueDepth
// not-yet-dispatched requests. When the queue is full the configured
// Policy applies: Block waits for space, Shed fails fast with
// ErrOverloaded, and Degrade answers inline from the scalar host
// reference (Params.Encode and friends) — correct but slow, and
// bit-identical to the device path only at core.Baseline.
//
// # Robustness
//
// The serving plane composes with the deterministic PCIe fault model the
// training plane already survives (DESIGN.md §14). Config.Faults arms
// per-worker seeded fault streams on the f64 device path; workers use the
// non-panicking TryCopyIn/TryCopyOut with a bounded serve-level retry on
// top of the device's own, and a supervisor catches worker-fatal faults
// (permanent transfers, retry exhaustion, panics) at the batch boundary:
// the batch is re-dispatched once to a healthy replica or completed with
// a typed *WorkerFaultError, and the worker is rebuilt on a fresh device
// under a capped-restart circuit. Exhausted slots retire, moving the
// health state machine Healthy → Degraded → Down (see Health). Per-request
// deadlines (Config.RequestTimeout, or ctx on the *Context call variants)
// guarantee no caller ever hangs: expired requests return ErrDeadline and
// the late batch result is discarded safely. Drain provides graceful
// shutdown: admission stops while in-flight requests complete.
//
// # Model loading
//
// Weights are immutable copies taken at load time (copy-on-load), so a
// Server never races with continued training on the source model. Load
// from a PHCK checkpoint written by core.Trainer or cmd/phitrain
// (AutoencoderFromCheckpoint and friends), or hand off in-process from a
// trained device model via its Download method:
//
//	model := serve.Autoencoder(cfg, trained.Download())
//	srv, err := serve.New(model, serve.Config{MaxBatch: 16, MaxWait: time.Millisecond})
//
// Every stage records into internal/metrics (serve.queue.depth,
// serve.batch.size, serve.latency.seconds, serve.sheds, serve.degrades,
// serve.fault.*, serve.restart.*, serve.health) when collection is
// enabled, and Server.Stats returns a BatcherStats snapshot
// unconditionally.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/sim"
)

// Op identifies a serving operation.
type Op int

const (
	// OpEncode maps an input to its hidden representation (autoencoder,
	// RBM).
	OpEncode Op = iota
	// OpReconstruct round-trips an input through the model (autoencoder,
	// RBM mean-field).
	OpReconstruct
	// OpPredict returns softmax class probabilities (MLP).
	OpPredict

	numOps = 3
)

func (o Op) String() string {
	switch o {
	case OpEncode:
		return "encode"
	case OpReconstruct:
		return "reconstruct"
	case OpPredict:
		return "predict"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Policy selects the admission-control behavior when the request queue is
// full.
type Policy int

const (
	// Block waits until queue space frees up (backpressure onto callers).
	Block Policy = iota
	// Shed fails fast: the request is rejected with ErrOverloaded and no
	// in-flight work is dropped.
	Shed
	// Degrade answers on the caller's goroutine from the scalar host
	// reference instead of queueing — graceful degradation that trades
	// the device's throughput for bounded queueing.
	Degrade
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Precision selects the numeric width of the worker forward path.
type Precision int

const (
	// F64 (the default) runs the same float64 device path as training.
	F64 Precision = iota
	// F32 runs the reduced-precision host path: workers hold float32
	// weight snapshots (converted copy-on-load) and execute the packed f32
	// kernels directly — double the SIMD lanes per FMA, half the memory
	// traffic. Requests and responses stay []float64 at the API surface;
	// rounding happens at the staging boundary. The Degrade fallback
	// remains the f64 scalar host reference.
	F32
)

func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ErrOverloaded is returned by serving calls under the Shed policy when
// the admission queue is full.
var ErrOverloaded = errors.New("serve: overloaded")

// UnsupportedOpError reports a serving call whose operation the loaded
// model family does not implement — asking an autoencoder to Predict, or a
// classifier to Reconstruct. Every path returns it, including the Degrade
// fallback, which used to assume all operations exist for all families.
type UnsupportedOpError struct {
	Kind string // model family, as reported by Model.Kind
	Op   Op
}

func (e *UnsupportedOpError) Error() string {
	return fmt.Sprintf("serve: %s model does not support %s", e.Kind, e.Op)
}

// ErrClosed is returned by serving calls after Close or Drain.
var ErrClosed = errors.New("serve: server closed")

// Config parameterizes a Server. The zero value of every field selects a
// sensible default (see each field).
type Config struct {
	// Arch is the simulated platform each worker's device models; nil
	// selects the paper's Xeon Phi 5110P.
	Arch *sim.Arch
	// Level is the optimization-ladder step the workers execute at
	// (core.Baseline by default — set core.Improved for the full stack).
	Level core.OptLevel
	// Cores bounds each worker device's physical cores (0 = all).
	Cores int
	// Workers is the number of device-bound workers; each owns a private
	// device and model replica. Default 1.
	Workers int
	// PoolWorkers sizes the Go worker pool backing each device's parallel
	// kernels; 0 runs kernels on the worker goroutine (deterministic and
	// cheap for small models).
	PoolWorkers int
	// MaxBatch is the coalescing limit: a pending queue flushes as soon
	// as it holds this many requests. Default 16.
	MaxBatch int
	// MaxWait is the deadline lever: a pending queue flushes when its
	// oldest request has waited this long, even if the batch is short.
	// Default 1ms.
	MaxWait time.Duration
	// QueueDepth bounds the not-yet-dispatched requests across all
	// operations; at the bound, Policy applies. Default 4×MaxBatch, and
	// it must be at least MaxBatch so a full batch can form.
	QueueDepth int
	// Policy is the full-queue behavior (Block by default).
	Policy Policy
	// Adaptive enables the online batching controller: the effective flush
	// size and deadline start at MaxBatch/MaxWait and are retuned from the
	// live flush stream (flush-full vs flush-deadline ratio, queue depth,
	// shed rate), erasing the latency cliff a static window hits when
	// client concurrency sits below MaxBatch. MaxBatch stays a hard
	// ceiling (worker staging buffers are sized to it) and MaxWait an
	// upper bound. Adjustments are visible as serve.tune.* metrics and in
	// BatcherStats.
	Adaptive bool
	// Precision is the numeric width of the worker forward path: F64 (the
	// default) serves on the simulated device exactly as trained; F32
	// serves from float32 weight snapshots on the packed f32 host kernels,
	// trading ~1e-6-grade per-element differences (see the equivalence
	// suite) for raw latency.
	Precision Precision
	// Seed seeds each worker context's RNG stream (worker i gets
	// Seed + i). Inference paths draw no samples, so this matters only
	// for diagnostics.
	Seed uint64

	// Faults arms the deterministic PCIe fault model on every F64
	// worker's device (a zero Rate leaves it off). Each worker draws from
	// its own derived stream — seeded from Faults.Seed, the slot index,
	// and the rebuild incarnation — so a chaos run replays exactly,
	// independent of goroutine scheduling. The F32 path holds no device
	// and is unaffected. Model upload during replica construction is
	// never fault-injected: faults arm after the replica is built, as a
	// real deployment would fence off provisioning from serving.
	Faults device.FaultConfig
	// FaultRetries bounds the serve-level re-attempts of a staging
	// transfer after the device's own retry budget (Faults.MaxRetries) is
	// exhausted by transient faults — a second line of defense before the
	// fault escalates to the supervisor. Permanent faults escalate
	// immediately. Default 2; negative is invalid.
	FaultRetries int
	// MaxRestarts caps how many times a faulted worker is rebuilt on a
	// fresh device before its slot retires, degrading the server. Default
	// 3. -1 disables rebuilds (retire on first worker-fatal fault); below
	// -1 is invalid.
	MaxRestarts int
	// RequestTimeout is the per-request deadline measured from admission
	// attempt to answer. Expired requests fail with ErrDeadline — whether
	// still waiting for queue space, batched, or in flight on a worker —
	// and a late worker result is discarded safely. 0 disables the
	// deadline; negative is invalid. The *Context call variants compose:
	// the earlier of ctx's deadline and RequestTimeout applies.
	RequestTimeout time.Duration
}

func (c *Config) fillDefaults() error {
	if c.Arch == nil {
		c.Arch = sim.XeonPhi5110P()
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 0 {
		return fmt.Errorf("serve: negative worker count %d", c.Workers)
	}
	if c.PoolWorkers < 0 {
		return fmt.Errorf("serve: negative pool size %d", c.PoolWorkers)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: negative max batch %d", c.MaxBatch)
	}
	if c.MaxWait == 0 {
		c.MaxWait = time.Millisecond
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("serve: negative max wait %v", c.MaxWait)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.QueueDepth < c.MaxBatch {
		return fmt.Errorf("serve: queue depth %d below max batch %d", c.QueueDepth, c.MaxBatch)
	}
	switch c.Policy {
	case Block, Shed, Degrade:
	default:
		return fmt.Errorf("serve: unknown policy %d", int(c.Policy))
	}
	switch c.Precision {
	case F64, F32:
	default:
		return fmt.Errorf("serve: unknown precision %d", int(c.Precision))
	}
	if c.Faults.Rate > 0 {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.FaultRetries == 0 {
		c.FaultRetries = 2
	}
	if c.FaultRetries < 0 {
		return fmt.Errorf("serve: negative fault retries %d", c.FaultRetries)
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.MaxRestarts < -1 {
		return fmt.Errorf("serve: invalid max restarts %d", c.MaxRestarts)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("serve: negative request timeout %v", c.RequestTimeout)
	}
	return nil
}

// maxRestarts is the effective restart budget: the -1 sentinel means zero
// rebuilds.
func (c *Config) maxRestarts() int {
	if c.MaxRestarts < 0 {
		return 0
	}
	return c.MaxRestarts
}

// request lifecycle states, raced between the completing worker (or
// supervisor) and an abandoning caller via the state CAS.
const (
	reqPending int32 = iota
	reqDone
	reqAbandoned
)

// request is one admitted serving call, completed by a worker or the
// supervisor (or answered by the degrade path before admission). in is a
// private copy taken at admission: the caller keeps ownership of its own
// slice and may reuse it immediately after the call returns — even after
// a deadline abandons the request while its batch is still in flight.
type request struct {
	op   Op
	in   []float64
	out  []float64
	err  error
	done chan struct{}
	enq  time.Time

	// state arbitrates completion vs abandonment (reqPending → reqDone by
	// the worker, reqPending → reqAbandoned by a deadline-expired caller);
	// the loser of the CAS race discards its side.
	state atomic.Int32
	// redispatched marks a batch already re-dispatched once after a worker
	// fault; guarded by s.mu. It gates the one-retry supervisor policy and
	// tells the receiving worker the batch already left the admission
	// queue accounting.
	redispatched bool
}

// Server coalesces concurrent inference requests into micro-batches and
// executes them on device-bound workers. Create with New; all exported
// methods are safe for concurrent use.
type Server struct {
	cfg   Config
	model *Model

	mu       sync.Mutex
	notFull  *sync.Cond
	pending  [numOps][]*request
	timerGen [numOps]uint64
	// timers holds the armed flush timer per op so flushes stop it
	// eagerly instead of letting stale generation-guarded timers fire
	// into the lock; timersArmed counts live timers (tested by the churn
	// suite to prove no pile-up).
	timers      [numOps]*time.Timer
	timersArmed int
	queued      int
	// inflight counts admitted requests not yet settled by finishRequest;
	// Drain waits on it reaching zero.
	inflight int
	// live counts worker slots that have not retired; draining marks a
	// Drain in progress. Both feed healthLocked.
	live     int
	draining bool
	closed   bool

	// curBatch/curWait are the effective batching knobs, equal to
	// cfg.MaxBatch/cfg.MaxWait unless the adaptive controller moved them.
	// Guarded by mu, like the tuner itself.
	curBatch int
	curWait  time.Duration
	tuner    *autotuner

	batches chan []*request
	workers []*worker
	wg      sync.WaitGroup

	st counters
}

// New builds a server for the model: Workers device-bound replicas plus
// the micro-batcher. The model's weights were already copied at load time,
// so the source of the parameters may keep training.
func New(m *Model, cfg Config) (*Server, error) {
	if m == nil {
		return nil, errors.New("serve: nil model")
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		model: m,
		// Workers slots of headroom beyond QueueDepth: flushes send at
		// most queued (≤ QueueDepth) batches, and each worker can have at
		// most one re-dispatched batch in flight, so sends under s.mu
		// never block.
		batches:  make(chan []*request, cfg.QueueDepth+cfg.Workers),
		curBatch: cfg.MaxBatch,
		curWait:  cfg.MaxWait,
		live:     cfg.Workers,
	}
	s.notFull = sync.NewCond(&s.mu)
	if cfg.Adaptive {
		s.tuner = newAutotuner(cfg.MaxBatch, cfg.MaxWait)
		recordTune(s.curBatch, s.curWait)
	}
	for i := 0; i < cfg.Workers; i++ {
		w, err := newWorker(s, i)
		if err != nil {
			for _, prev := range s.workers {
				prev.freeQuiet()
			}
			return nil, fmt.Errorf("serve: worker %d: %w", i, err)
		}
		s.workers = append(s.workers, w)
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop()
	}
	recordHealth(Healthy)
	return s, nil
}

// Encode maps one example to its hidden representation (autoencoder, RBM).
func (s *Server) Encode(x []float64) ([]float64, error) {
	return s.doCtx(context.Background(), OpEncode, x)
}

// Reconstruct round-trips one example through the model (autoencoder, RBM
// mean-field reconstruction).
func (s *Server) Reconstruct(x []float64) ([]float64, error) {
	return s.doCtx(context.Background(), OpReconstruct, x)
}

// Predict returns the softmax class probabilities for one example (MLP).
func (s *Server) Predict(x []float64) ([]float64, error) {
	return s.doCtx(context.Background(), OpPredict, x)
}

// EncodeContext is Encode honoring ctx: cancellation abandons the request
// (its batch result is discarded safely) and a ctx deadline composes with
// Config.RequestTimeout — the earlier one applies, surfacing as
// ErrDeadline.
func (s *Server) EncodeContext(ctx context.Context, x []float64) ([]float64, error) {
	return s.doCtx(ctx, OpEncode, x)
}

// ReconstructContext is Reconstruct honoring ctx (see EncodeContext).
func (s *Server) ReconstructContext(ctx context.Context, x []float64) ([]float64, error) {
	return s.doCtx(ctx, OpReconstruct, x)
}

// PredictContext is Predict honoring ctx (see EncodeContext).
func (s *Server) PredictContext(ctx context.Context, x []float64) ([]float64, error) {
	return s.doCtx(ctx, OpPredict, x)
}

// Model returns the served model description.
func (s *Server) Model() *Model { return s.model }

// doCtx validates, admits, batches and awaits one request.
func (s *Server) doCtx(ctx context.Context, op Op, x []float64) ([]float64, error) {
	if !s.model.supports(op) {
		return nil, &UnsupportedOpError{Kind: s.model.Kind(), Op: op}
	}
	if len(x) != s.model.InputDim() {
		return nil, fmt.Errorf("serve: input length %d, want %d", len(x), s.model.InputDim())
	}
	// Copy at admission: the request must not alias the caller's slice,
	// which the caller is free to reuse the moment this call returns —
	// and, under a deadline, even before the batch stages.
	in := append([]float64(nil), x...)
	r := &request{op: op, in: in, done: make(chan struct{}), enq: time.Now()}

	var deadline time.Time
	if s.cfg.RequestTimeout > 0 {
		deadline = r.enq.Add(s.cfg.RequestTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	admitted, err := s.admit(ctx, r, deadline)
	if err != nil {
		return nil, err
	}
	if !admitted {
		// Degrade policy at a full queue: answer inline from the scalar
		// host reference, outside the lock.
		return s.model.hostInfer(op, in)
	}
	return s.await(ctx, r, deadline)
}

// admit places r in its pending queue, applying the admission policy at a
// full queue. It returns admitted=false with a nil error when the Degrade
// policy should answer inline. Block waits are woken by queue space, Close,
// Drain, the last worker retiring, ctx cancellation, or the request
// deadline (the latter two via one-shot broadcasts armed on first wait).
func (s *Server) admit(ctx context.Context, r *request, deadline time.Time) (bool, error) {
	var waker *time.Timer
	var stopCtx func() bool
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		if waker != nil {
			waker.Stop()
		}
		if stopCtx != nil {
			stopCtx()
		}
	}()
	for {
		if ctx.Err() != nil {
			return false, ctxErr(ctx)
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			s.st.deadlineTimeouts.Add(1)
			recordDeadlineTimeout()
			return false, ErrDeadline
		}
		if s.closed || s.draining {
			return false, ErrClosed
		}
		if s.live == 0 {
			return false, ErrDown
		}
		if s.queued < s.cfg.QueueDepth {
			break
		}
		switch s.cfg.Policy {
		case Shed:
			s.st.sheds.Add(1)
			recordShed()
			return false, ErrOverloaded
		case Degrade:
			s.st.degrades.Add(1)
			recordDegrade()
			return false, nil
		default: // Block
			if waker == nil && !deadline.IsZero() {
				waker = time.AfterFunc(time.Until(deadline), s.notFull.Broadcast)
			}
			if stopCtx == nil && ctx.Done() != nil {
				stopCtx = context.AfterFunc(ctx, s.notFull.Broadcast)
			}
			s.notFull.Wait()
		}
	}
	s.queued++
	s.inflight++
	s.st.requests.Add(1)
	s.pending[r.op] = append(s.pending[r.op], r)
	switch {
	case len(s.pending[r.op]) >= s.curBatch:
		s.flushLocked(r.op, true)
	case len(s.pending[r.op]) == 1:
		s.armTimerLocked(r.op)
	}
	recordQueueDepth(s.queued)
	return true, nil
}

// await blocks until the request completes or its deadline/ctx expires.
// An expiring caller races the completing worker through the request's
// state CAS: if the caller wins, the eventual result is discarded; if the
// worker already won, the real answer is returned.
func (s *Server) await(ctx context.Context, r *request, deadline time.Time) ([]float64, error) {
	if deadline.IsZero() && ctx.Done() == nil {
		<-r.done
		return r.out, r.err
	}
	var timerC <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timerC = t.C
	}
	select {
	case <-r.done:
		return r.out, r.err
	case <-timerC:
		if s.abandon(r) {
			return nil, ErrDeadline
		}
	case <-ctx.Done():
		if s.abandon(r) {
			return nil, ctxErr(ctx)
		}
	}
	// Lost the abandon race: the worker completed first; its answer is
	// (about to be) published.
	<-r.done
	return r.out, r.err
}

// abandon tries to mark r abandoned; it reports whether the caller won the
// race against the completing worker.
func (s *Server) abandon(r *request) bool {
	if r.state.CompareAndSwap(reqPending, reqAbandoned) {
		s.st.deadlineTimeouts.Add(1)
		recordDeadlineTimeout()
		return true
	}
	return false
}

// ctxErr maps a ctx expiry to the server's error surface: deadline expiry
// becomes ErrDeadline (same class as RequestTimeout), cancellation stays
// context.Canceled.
func ctxErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ctx.Err()
}

// armTimerLocked starts the MaxWait flush timer for op's fresh pending
// queue. Caller holds s.mu.
func (s *Server) armTimerLocked(op Op) {
	gen := s.timerGen[op]
	s.timersArmed++
	s.timers[op] = time.AfterFunc(s.curWait, func() { s.deadlineFlush(op, gen) })
}

// flushLocked hands the pending queue of op to the workers, stopping the
// queue's armed flush timer. Caller holds s.mu. The batches channel has a
// slot for every queued request plus re-dispatch headroom, so the send
// cannot block while the lock is held.
func (s *Server) flushLocked(op Op, full bool) {
	if t := s.timers[op]; t != nil {
		if t.Stop() {
			// Stopped before firing; a false return means the timer
			// callback is already running and will settle the ledger
			// itself in deadlineFlush.
			s.timersArmed--
		}
		s.timers[op] = nil
	}
	batch := s.pending[op]
	if len(batch) == 0 {
		return
	}
	s.pending[op] = nil
	s.timerGen[op]++
	s.st.batches.Add(1)
	s.st.batchSizeSum.Add(int64(len(batch)))
	if full {
		s.st.flushFull.Add(1)
	} else {
		s.st.flushDeadline.Add(1)
	}
	recordBatch(len(batch))
	s.batches <- batch
	if s.tuner != nil && !s.closed {
		if s.tuner.observe(full, len(batch), s.queued, s.st.sheds.Load()) {
			s.curBatch = s.tuner.batch
			s.curWait = s.tuner.wait
			s.st.adjustments.Add(1)
			recordTune(s.curBatch, s.curWait)
			recordTuneAdjust()
		}
	}
}

// deadlineFlush fires when the oldest request of a pending queue has
// waited MaxWait. gen detects queues already flushed for another reason
// (the timer is stopped eagerly on flush, but Stop can race the firing).
func (s *Server) deadlineFlush(op Op, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.timersArmed--
	if s.closed || gen != s.timerGen[op] {
		return
	}
	s.timers[op] = nil
	s.flushLocked(op, false)
}

// Close flushes the pending queues, waits for every in-flight batch to
// complete, and releases the workers' devices. Blocked submitters are
// woken with ErrClosed; no admitted request is dropped. Close is
// idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for op := 0; op < numOps; op++ {
		s.flushLocked(Op(op), false)
	}
	s.notFull.Broadcast()
	h := s.healthLocked()
	s.mu.Unlock()
	recordHealth(h)
	close(s.batches)
	s.wg.Wait()
}
