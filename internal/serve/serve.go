// Package serve is phideep's online-inference subsystem: it turns a
// trained model into a server that answers concurrent single-example
// encode/reconstruct/predict requests. The ROADMAP north star is a system
// "serving heavy traffic from millions of users"; this package supplies
// the missing half of that story on top of the training stack.
//
// # Architecture
//
// Requests are coalesced by a dynamic micro-batcher: each operation has a
// pending queue that flushes to a worker either when it reaches
// Config.MaxBatch or when the oldest request has waited Config.MaxWait,
// whichever comes first — the batching lever that CHAOS (Viebke et al.)
// shows keeps many-core utilization high, applied to latency-bound
// traffic. Flushed batches execute on a pool of device-bound workers,
// each owning a private simulated device (device.Device is not safe for
// concurrent use) with a forward-only model replica built by the model
// packages' NewInference constructors, running the exact blas/kernels
// forward path of training at any core OptLevel.
//
// At Config.Precision F32 the workers skip the simulated device and run
// the reduced-precision host path instead: one float32 weight snapshot is
// converted per model (lazily, shared read-only) and each worker executes
// the packed f32 kernels with a private activation workspace. The request
// and response surface stays []float64 — rounding happens at the staging
// boundary — and answers differ from the f64 path only by float32
// rounding, bounded by the cross-precision equivalence suite.
//
// Admission is controlled by a bounded queue of Config.QueueDepth
// not-yet-dispatched requests. When the queue is full the configured
// Policy applies: Block waits for space, Shed fails fast with
// ErrOverloaded, and Degrade answers inline from the scalar host
// reference (Params.Encode and friends) — correct but slow, and
// bit-identical to the device path only at core.Baseline.
//
// # Model loading
//
// Weights are immutable copies taken at load time (copy-on-load), so a
// Server never races with continued training on the source model. Load
// from a PHCK checkpoint written by core.Trainer or cmd/phitrain
// (AutoencoderFromCheckpoint and friends), or hand off in-process from a
// trained device model via its Download method:
//
//	model := serve.Autoencoder(cfg, trained.Download())
//	srv, err := serve.New(model, serve.Config{MaxBatch: 16, MaxWait: time.Millisecond})
//
// Every stage records into internal/metrics (serve.queue.depth,
// serve.batch.size, serve.latency.seconds, serve.sheds, serve.degrades)
// when collection is enabled, and Server.Stats returns a BatcherStats
// snapshot unconditionally.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"phideep/internal/core"
	"phideep/internal/sim"
)

// Op identifies a serving operation.
type Op int

const (
	// OpEncode maps an input to its hidden representation (autoencoder,
	// RBM).
	OpEncode Op = iota
	// OpReconstruct round-trips an input through the model (autoencoder,
	// RBM mean-field).
	OpReconstruct
	// OpPredict returns softmax class probabilities (MLP).
	OpPredict

	numOps = 3
)

func (o Op) String() string {
	switch o {
	case OpEncode:
		return "encode"
	case OpReconstruct:
		return "reconstruct"
	case OpPredict:
		return "predict"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Policy selects the admission-control behavior when the request queue is
// full.
type Policy int

const (
	// Block waits until queue space frees up (backpressure onto callers).
	Block Policy = iota
	// Shed fails fast: the request is rejected with ErrOverloaded and no
	// in-flight work is dropped.
	Shed
	// Degrade answers on the caller's goroutine from the scalar host
	// reference instead of queueing — graceful degradation that trades
	// the device's throughput for bounded queueing.
	Degrade
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Precision selects the numeric width of the worker forward path.
type Precision int

const (
	// F64 (the default) runs the same float64 device path as training.
	F64 Precision = iota
	// F32 runs the reduced-precision host path: workers hold float32
	// weight snapshots (converted copy-on-load) and execute the packed f32
	// kernels directly — double the SIMD lanes per FMA, half the memory
	// traffic. Requests and responses stay []float64 at the API surface;
	// rounding happens at the staging boundary. The Degrade fallback
	// remains the f64 scalar host reference.
	F32
)

func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ErrOverloaded is returned by serving calls under the Shed policy when
// the admission queue is full.
var ErrOverloaded = errors.New("serve: overloaded")

// UnsupportedOpError reports a serving call whose operation the loaded
// model family does not implement — asking an autoencoder to Predict, or a
// classifier to Reconstruct. Every path returns it, including the Degrade
// fallback, which used to assume all operations exist for all families.
type UnsupportedOpError struct {
	Kind string // model family, as reported by Model.Kind
	Op   Op
}

func (e *UnsupportedOpError) Error() string {
	return fmt.Sprintf("serve: %s model does not support %s", e.Kind, e.Op)
}

// ErrClosed is returned by serving calls after Close.
var ErrClosed = errors.New("serve: server closed")

// Config parameterizes a Server. The zero value of every field selects a
// sensible default (see each field).
type Config struct {
	// Arch is the simulated platform each worker's device models; nil
	// selects the paper's Xeon Phi 5110P.
	Arch *sim.Arch
	// Level is the optimization-ladder step the workers execute at
	// (core.Baseline by default — set core.Improved for the full stack).
	Level core.OptLevel
	// Cores bounds each worker device's physical cores (0 = all).
	Cores int
	// Workers is the number of device-bound workers; each owns a private
	// device and model replica. Default 1.
	Workers int
	// PoolWorkers sizes the Go worker pool backing each device's parallel
	// kernels; 0 runs kernels on the worker goroutine (deterministic and
	// cheap for small models).
	PoolWorkers int
	// MaxBatch is the coalescing limit: a pending queue flushes as soon
	// as it holds this many requests. Default 16.
	MaxBatch int
	// MaxWait is the deadline lever: a pending queue flushes when its
	// oldest request has waited this long, even if the batch is short.
	// Default 1ms.
	MaxWait time.Duration
	// QueueDepth bounds the not-yet-dispatched requests across all
	// operations; at the bound, Policy applies. Default 4×MaxBatch, and
	// it must be at least MaxBatch so a full batch can form.
	QueueDepth int
	// Policy is the full-queue behavior (Block by default).
	Policy Policy
	// Adaptive enables the online batching controller: the effective flush
	// size and deadline start at MaxBatch/MaxWait and are retuned from the
	// live flush stream (flush-full vs flush-deadline ratio, queue depth,
	// shed rate), erasing the latency cliff a static window hits when
	// client concurrency sits below MaxBatch. MaxBatch stays a hard
	// ceiling (worker staging buffers are sized to it) and MaxWait an
	// upper bound. Adjustments are visible as serve.tune.* metrics and in
	// BatcherStats.
	Adaptive bool
	// Precision is the numeric width of the worker forward path: F64 (the
	// default) serves on the simulated device exactly as trained; F32
	// serves from float32 weight snapshots on the packed f32 host kernels,
	// trading ~1e-6-grade per-element differences (see the equivalence
	// suite) for raw latency.
	Precision Precision
	// Seed seeds each worker context's RNG stream (worker i gets
	// Seed + i). Inference paths draw no samples, so this matters only
	// for diagnostics.
	Seed uint64
}

func (c *Config) fillDefaults() error {
	if c.Arch == nil {
		c.Arch = sim.XeonPhi5110P()
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 0 {
		return fmt.Errorf("serve: negative worker count %d", c.Workers)
	}
	if c.PoolWorkers < 0 {
		return fmt.Errorf("serve: negative pool size %d", c.PoolWorkers)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: negative max batch %d", c.MaxBatch)
	}
	if c.MaxWait == 0 {
		c.MaxWait = time.Millisecond
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("serve: negative max wait %v", c.MaxWait)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.QueueDepth < c.MaxBatch {
		return fmt.Errorf("serve: queue depth %d below max batch %d", c.QueueDepth, c.MaxBatch)
	}
	switch c.Policy {
	case Block, Shed, Degrade:
	default:
		return fmt.Errorf("serve: unknown policy %d", int(c.Policy))
	}
	switch c.Precision {
	case F64, F32:
	default:
		return fmt.Errorf("serve: unknown precision %d", int(c.Precision))
	}
	return nil
}

// request is one admitted serving call, completed by a worker (or by the
// degrade path before admission).
type request struct {
	op   Op
	in   []float64
	out  []float64
	err  error
	done chan struct{}
	enq  time.Time
}

// Server coalesces concurrent inference requests into micro-batches and
// executes them on device-bound workers. Create with New; all exported
// methods are safe for concurrent use.
type Server struct {
	cfg   Config
	model *Model

	mu       sync.Mutex
	notFull  *sync.Cond
	pending  [numOps][]*request
	timerGen [numOps]uint64
	queued   int
	closed   bool

	// curBatch/curWait are the effective batching knobs, equal to
	// cfg.MaxBatch/cfg.MaxWait unless the adaptive controller moved them.
	// Guarded by mu, like the tuner itself.
	curBatch int
	curWait  time.Duration
	tuner    *autotuner

	batches chan []*request
	workers []*worker
	wg      sync.WaitGroup

	st counters
}

// New builds a server for the model: Workers device-bound replicas plus
// the micro-batcher. The model's weights were already copied at load time,
// so the source of the parameters may keep training.
func New(m *Model, cfg Config) (*Server, error) {
	if m == nil {
		return nil, errors.New("serve: nil model")
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		model:    m,
		batches:  make(chan []*request, cfg.QueueDepth),
		curBatch: cfg.MaxBatch,
		curWait:  cfg.MaxWait,
	}
	s.notFull = sync.NewCond(&s.mu)
	if cfg.Adaptive {
		s.tuner = newAutotuner(cfg.MaxBatch, cfg.MaxWait)
		recordTune(s.curBatch, s.curWait)
	}
	for i := 0; i < cfg.Workers; i++ {
		w, err := newWorker(s, i)
		if err != nil {
			for _, prev := range s.workers {
				prev.free()
			}
			return nil, fmt.Errorf("serve: worker %d: %w", i, err)
		}
		s.workers = append(s.workers, w)
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop()
	}
	return s, nil
}

// Encode maps one example to its hidden representation (autoencoder, RBM).
func (s *Server) Encode(x []float64) ([]float64, error) { return s.do(OpEncode, x) }

// Reconstruct round-trips one example through the model (autoencoder, RBM
// mean-field reconstruction).
func (s *Server) Reconstruct(x []float64) ([]float64, error) { return s.do(OpReconstruct, x) }

// Predict returns the softmax class probabilities for one example (MLP).
func (s *Server) Predict(x []float64) ([]float64, error) { return s.do(OpPredict, x) }

// Model returns the served model description.
func (s *Server) Model() *Model { return s.model }

// do admits, batches and awaits one request.
func (s *Server) do(op Op, x []float64) ([]float64, error) {
	if !s.model.supports(op) {
		return nil, &UnsupportedOpError{Kind: s.model.Kind(), Op: op}
	}
	if len(x) != s.model.InputDim() {
		return nil, fmt.Errorf("serve: input length %d, want %d", len(x), s.model.InputDim())
	}
	r := &request{op: op, in: x, done: make(chan struct{}), enq: time.Now()}

	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if s.queued < s.cfg.QueueDepth {
			break
		}
		switch s.cfg.Policy {
		case Shed:
			s.st.sheds.Add(1)
			s.mu.Unlock()
			recordShed()
			return nil, ErrOverloaded
		case Degrade:
			s.st.degrades.Add(1)
			s.mu.Unlock()
			recordDegrade()
			return s.model.hostInfer(op, x)
		default: // Block
			s.notFull.Wait()
		}
	}
	s.queued++
	s.st.requests.Add(1)
	s.pending[op] = append(s.pending[op], r)
	switch {
	case len(s.pending[op]) >= s.curBatch:
		s.flushLocked(op, true)
	case len(s.pending[op]) == 1:
		gen := s.timerGen[op]
		time.AfterFunc(s.curWait, func() { s.deadlineFlush(op, gen) })
	}
	recordQueueDepth(s.queued)
	s.mu.Unlock()

	<-r.done
	return r.out, r.err
}

// flushLocked hands the pending queue of op to the workers. Caller holds
// s.mu. The batches channel is sized to QueueDepth — at least one slot per
// queued request — so the send cannot block while the lock is held.
func (s *Server) flushLocked(op Op, full bool) {
	batch := s.pending[op]
	if len(batch) == 0 {
		return
	}
	s.pending[op] = nil
	s.timerGen[op]++
	s.st.batches.Add(1)
	s.st.batchSizeSum.Add(int64(len(batch)))
	if full {
		s.st.flushFull.Add(1)
	} else {
		s.st.flushDeadline.Add(1)
	}
	recordBatch(len(batch))
	s.batches <- batch
	if s.tuner != nil && !s.closed {
		if s.tuner.observe(full, len(batch), s.queued, s.st.sheds.Load()) {
			s.curBatch = s.tuner.batch
			s.curWait = s.tuner.wait
			s.st.adjustments.Add(1)
			recordTune(s.curBatch, s.curWait)
			recordTuneAdjust()
		}
	}
}

// deadlineFlush fires when the oldest request of a pending queue has
// waited MaxWait. gen detects queues already flushed for another reason.
func (s *Server) deadlineFlush(op Op, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || gen != s.timerGen[op] {
		return
	}
	s.flushLocked(op, false)
}

// Close flushes the pending queues, waits for every in-flight batch to
// complete, and releases the workers' devices. Blocked submitters are
// woken with ErrClosed; no admitted request is dropped. Close is
// idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for op := 0; op < numOps; op++ {
		s.flushLocked(Op(op), false)
	}
	s.notFull.Broadcast()
	s.mu.Unlock()
	close(s.batches)
	s.wg.Wait()
}
