package serve

import "time"

// tuneWindow is the number of flushes between controller decisions: long
// enough to average over scheduling jitter, short enough to react within
// ~100 ms at millisecond flush cadences.
const tuneWindow = 8

// autotuner is the online controller behind Config.Adaptive. It owns the
// batcher's two knobs — the effective flush size and flush deadline — and
// retunes them from the live flush stream: a batcher whose flushes are
// deadline-dominated is waiting on a timer for requests that are not
// coming (the EXPERIMENTS.md regime cliff below clients == MaxBatch), so
// the controller shrinks the flush size toward the observed concurrency
// until batches fill and dispatch immediately; sheds and sustained backlog
// push the knobs back toward the configured ceilings.
//
// The controller is pure and deterministic: state advances only on flush
// events (no clocks, no randomness), so an identical flush trace always
// produces the identical knob sequence. Config.MaxBatch stays a hard
// ceiling — worker staging buffers are sized to it — and Config.MaxWait
// bounds the deadline from above.
//
// Stability guards: decisions happen once per tuneWindow flushes, not per
// flush; every adjustment is followed by one cooldown window so the stats
// perturbed by the transition are discarded; growth requires positive
// evidence (sheds, or a backlog of at least twice the current flush size),
// so the shrink that erases the cliff is not immediately undone; and all
// moves are monotone steps (halving/doubling, or a jump to the observed
// mean batch), so the knobs cannot chatter between far-apart values.
type autotuner struct {
	ceilBatch int
	ceilWait  time.Duration
	minWait   time.Duration

	batch       int
	wait        time.Duration
	adjustments int64

	// Window accumulators, reset at each decision.
	flushes   int
	deadline  int
	sizeSum   int
	cooldown  bool
	lastSheds int64
}

func newAutotuner(maxBatch int, maxWait time.Duration) *autotuner {
	minWait := maxWait / 64
	if minWait < 10*time.Microsecond {
		minWait = 10 * time.Microsecond
	}
	if minWait > maxWait {
		minWait = maxWait
	}
	return &autotuner{
		ceilBatch: maxBatch,
		ceilWait:  maxWait,
		minWait:   minWait,
		batch:     maxBatch,
		wait:      maxWait,
	}
}

// observe records one flush (full or deadline, its size, the queue depth
// and cumulative shed count at flush time) and returns true when a window
// completed and the effective configuration changed. The caller holds the
// server lock, so the tuner needs no synchronization of its own.
func (a *autotuner) observe(full bool, size, queued int, sheds int64) bool {
	a.flushes++
	a.sizeSum += size
	if !full {
		a.deadline++
	}
	if a.flushes < tuneWindow {
		return false
	}
	shedsDelta := sheds - a.lastSheds
	a.lastSheds = sheds
	changed := false
	if a.cooldown {
		a.cooldown = false
	} else {
		changed = a.decide(queued, shedsDelta)
		a.cooldown = changed
	}
	a.flushes, a.deadline, a.sizeSum = 0, 0, 0
	return changed
}

// decide applies the controller policy to one completed window.
func (a *autotuner) decide(queued int, shedsDelta int64) bool {
	avg := (a.sizeSum + a.flushes/2) / a.flushes
	if avg < 1 {
		avg = 1
	}
	deadlineFrac := float64(a.deadline) / float64(a.flushes)
	switch {
	case shedsDelta > 0 && a.batch < a.ceilBatch:
		// Overload: requests are being rejected, so trade latency for
		// worker throughput with bigger batches.
		a.batch = a.batch * 2
		if a.batch > a.ceilBatch {
			a.batch = a.ceilBatch
		}
	case deadlineFrac >= 0.5:
		// Deadline-dominated: concurrency sits below the flush size, so
		// every batch waits out the timer. Drop the flush size to the
		// observed mean batch — batches then fill and dispatch
		// immediately. If the size already matches and the timer still
		// dominates, the arrivals are too sparse to coalesce: cut the
		// deadline instead.
		switch {
		case avg < a.batch:
			a.batch = avg
		case a.wait > a.minWait:
			a.wait /= 2
			if a.wait < a.minWait {
				a.wait = a.minWait
			}
		default:
			return false
		}
	case a.deadline == 0 && queued >= 2*a.batch && a.batch < a.ceilBatch:
		// Full-flushing with a backlog at least twice the flush size:
		// demand clearly exceeds the shrunken batch, grow it back.
		a.batch = a.batch * 2
		if a.batch > a.ceilBatch {
			a.batch = a.ceilBatch
		}
	case a.deadline == 0 && a.wait < a.ceilWait:
		// The timer is not firing at all; restore deadline headroom so a
		// future traffic drop is caught by a generous window again.
		a.wait *= 2
		if a.wait > a.ceilWait {
			a.wait = a.ceilWait
		}
	default:
		return false
	}
	a.adjustments++
	return true
}
