package serve

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/mlp"
	"phideep/internal/rbm"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func aeTestConfig() autoencoder.Config {
	return autoencoder.Config{Visible: 12, Hidden: 7, Lambda: 1e-4, Rho: 0.05, Beta: 0.1}
}

func randExamples(n, dim int, seed uint64) [][]float64 {
	r := rng.New(seed)
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for j := range xs[i] {
			xs[i][j] = r.Float64()
		}
	}
	return xs
}

func closeRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(scale, 1)
}

// TestFlushOnFull pins the max-batch trigger: with an effectively infinite
// deadline, exactly MaxBatch concurrent requests must coalesce into one
// full flush.
func TestFlushOnFull(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{
		MaxBatch: 4,
		MaxWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	xs := randExamples(4, cfg.Visible, 2)
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x []float64) {
			defer wg.Done()
			if _, err := srv.Encode(x); err != nil {
				t.Errorf("Encode: %v", err)
			}
		}(x)
	}
	wg.Wait()

	st := srv.Stats()
	if st.Batches != 1 || st.FlushFull != 1 || st.FlushDeadline != 0 {
		t.Fatalf("want one full flush, got %+v", st)
	}
	if st.AvgBatchSize != 4 {
		t.Fatalf("avg batch size %g, want 4", st.AvgBatchSize)
	}
	if st.Requests != 4 || st.Completed != 4 {
		t.Fatalf("requests/completed %d/%d, want 4/4", st.Requests, st.Completed)
	}
}

// TestFlushOnDeadline pins the max-wait trigger: a partial batch must
// flush on the deadline, never reaching MaxBatch.
func TestFlushOnDeadline(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{
		MaxBatch: 64,
		MaxWait:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	xs := randExamples(3, cfg.Visible, 3)
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x []float64) {
			defer wg.Done()
			if _, err := srv.Encode(x); err != nil {
				t.Errorf("Encode: %v", err)
			}
		}(x)
	}
	wg.Wait()

	st := srv.Stats()
	if st.FlushFull != 0 {
		t.Fatalf("unexpected full flush: %+v", st)
	}
	if st.FlushDeadline < 1 {
		t.Fatalf("no deadline flush: %+v", st)
	}
	if st.Completed != 3 {
		t.Fatalf("completed %d, want 3", st.Completed)
	}
}

// forceFull artificially saturates the admission queue (white-box) and
// returns a release func. In-flight and pending work is unaffected:
// workers subtract their batch sizes from the inflated count.
func forceFull(s *Server) (release func()) {
	s.mu.Lock()
	s.queued += s.cfg.QueueDepth
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.queued -= s.cfg.QueueDepth
		s.notFull.Broadcast()
		s.mu.Unlock()
	}
}

// TestShedOverload pins the Shed policy: a full queue rejects new requests
// with ErrOverloaded while already-admitted requests still complete.
func TestShedOverload(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{
		MaxBatch: 8,
		MaxWait:  20 * time.Millisecond,
		Policy:   Shed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Admit two requests; they sit pending until the deadline flush.
	xs := randExamples(3, cfg.Visible, 4)
	results := make(chan error, 2)
	for _, x := range xs[:2] {
		go func(x []float64) {
			_, err := srv.Encode(x)
			results <- err
		}(x)
	}
	// Wait until both are admitted before saturating.
	for srv.Stats().Requests < 2 {
		time.Sleep(time.Millisecond)
	}

	release := forceFull(srv)
	if _, err := srv.Encode(xs[2]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full-queue Encode error = %v, want ErrOverloaded", err)
	}
	release()

	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("in-flight request dropped: %v", err)
		}
	}
	st := srv.Stats()
	if st.Sheds != 1 {
		t.Fatalf("sheds %d, want 1", st.Sheds)
	}
	if st.Completed != 2 {
		t.Fatalf("completed %d, want 2", st.Completed)
	}
}

// TestDegradeOverload pins the Degrade policy: a full queue answers from
// the scalar host path, bit-identical to Params.Encode.
func TestDegradeOverload(t *testing.T) {
	cfg := aeTestConfig()
	p := autoencoder.NewParams(cfg, 7)
	srv, err := New(Autoencoder(cfg, p), Config{Policy: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	x := randExamples(1, cfg.Visible, 5)[0]
	release := forceFull(srv)
	got, err := srv.Encode(x)
	release()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, cfg.Hidden)
	p.Encode(x, want)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("degraded encode[%d] = %g, want %g", j, got[j], want[j])
		}
	}
	if st := srv.Stats(); st.Degrades != 1 || st.Requests != 0 {
		t.Fatalf("stats %+v, want one degrade and no admissions", st)
	}
}

// TestBlockOverload pins the Block policy: a full queue parks the caller
// until space frees, then the request completes normally.
func TestBlockOverload(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{
		MaxWait: time.Millisecond,
		Policy:  Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	x := randExamples(1, cfg.Visible, 6)[0]
	release := forceFull(srv)
	done := make(chan error, 1)
	go func() {
		_, err := srv.Encode(x)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("blocked request returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked request never completed after release")
	}
}

// TestServedMatchesReference is the tentpole equivalence check. For every
// OptLevel it compares coalesced served answers against (a) a direct
// single-example device forward pass at the same level — bitwise equal,
// proving batching composition never changes an answer — and (b) the
// scalar host Params reference — bitwise at Baseline, 1e-12 relative at
// the blocked levels, which reorder the k-summation.
func TestServedMatchesReference(t *testing.T) {
	cfg := aeTestConfig()
	p := autoencoder.NewParams(cfg, 11)
	const n = 13
	xs := randExamples(n, cfg.Visible, 12)

	for _, lvl := range core.OptLevels {
		lvl := lvl
		t.Run(lvl.String(), func(t *testing.T) {
			srv, err := New(Autoencoder(cfg, p), Config{
				Level:    lvl,
				Workers:  2,
				MaxBatch: 4,
				MaxWait:  2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			// Direct single-example device path at the same level.
			dev := device.New(sim.XeonPhi5110P(), true, nil)
			ctx := core.NewContext(dev, lvl, 0, 99)
			direct, err := autoencoder.NewInference(ctx, cfg, 4, p)
			if err != nil {
				t.Fatal(err)
			}
			defer direct.Free()
			xbuf := dev.MustAlloc(4, cfg.Visible)
			stage := tensor.NewMatrix(4, cfg.Visible)

			served := make([][]float64, n)
			var wg sync.WaitGroup
			for i := range xs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					out, err := srv.Reconstruct(xs[i])
					if err != nil {
						t.Errorf("Reconstruct: %v", err)
						return
					}
					served[i] = out
				}(i)
			}
			wg.Wait()

			for i, x := range xs {
				copy(stage.RowView(0), x)
				dev.CopyIn(xbuf, stage, 0)
				out := direct.Reconstruct(xbuf.Slice(0, 1))
				ref := tensor.NewMatrix(1, out.Cols)
				dev.CopyOut(out, ref)
				want := ref.RowView(0)

				hostWant := make([]float64, cfg.Visible)
				p.Reconstruct(x, hostWant, cfg.Tied)

				for j := range want {
					if served[i][j] != want[j] {
						t.Fatalf("%s: served[%d][%d] = %g, direct device = %g (coalescing changed bits)",
							lvl, i, j, served[i][j], want[j])
					}
					if lvl == core.Baseline {
						if served[i][j] != hostWant[j] {
							t.Fatalf("Baseline: served[%d][%d] = %g, host reference = %g", i, j, served[i][j], hostWant[j])
						}
					} else if !closeRel(served[i][j], hostWant[j], 1e-12) {
						t.Fatalf("%s: served[%d][%d] = %g, host reference = %g beyond 1e-12", lvl, i, j, served[i][j], hostWant[j])
					}
				}
			}
		})
	}
}

// TestRBMServed checks the RBM encode/reconstruct path against the host
// reference at the Improved level.
func TestRBMServed(t *testing.T) {
	cfg := rbm.Config{Visible: 10, Hidden: 6}
	p := rbm.NewParams(cfg, 21)
	srv, err := New(RBM(cfg, p), Config{Level: core.Improved, MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i, x := range randExamples(5, cfg.Visible, 22) {
		enc, err := srv.Encode(x)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := srv.Reconstruct(x)
		if err != nil {
			t.Fatal(err)
		}
		wantEnc := make([]float64, cfg.Hidden)
		p.Encode(x, wantEnc)
		wantRec := make([]float64, cfg.Visible)
		p.Reconstruct(x, wantRec, cfg.GaussianVisible)
		for j := range wantEnc {
			if !closeRel(enc[j], wantEnc[j], 1e-12) {
				t.Fatalf("encode[%d][%d] = %g, want %g", i, j, enc[j], wantEnc[j])
			}
		}
		for j := range wantRec {
			if !closeRel(rec[j], wantRec[j], 1e-12) {
				t.Fatalf("reconstruct[%d][%d] = %g, want %g", i, j, rec[j], wantRec[j])
			}
		}
	}
}

// TestMLPServed checks the classifier path against PredictProbs, and that
// unsupported ops fail cleanly on both sides.
func TestMLPServed(t *testing.T) {
	cfg := mlp.Config{Sizes: []int{8, 5, 3}}
	p := mlp.NewParams(cfg, 31)
	srv, err := New(MLP(cfg, p), Config{Level: core.Improved, MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i, x := range randExamples(5, 8, 32) {
		probs, err := srv.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want := p.PredictProbs(cfg, x)
		sum := 0.0
		for j := range want {
			if !closeRel(probs[j], want[j], 1e-12) {
				t.Fatalf("probs[%d][%d] = %g, want %g", i, j, probs[j], want[j])
			}
			sum += probs[j]
		}
		if !closeRel(sum, 1, 1e-9) {
			t.Fatalf("probs sum %g", sum)
		}
	}
	if _, err := srv.Encode(make([]float64, 8)); err == nil {
		t.Fatal("mlp Encode should be unsupported")
	}

	aeCfg := aeTestConfig()
	aeSrv, err := New(Autoencoder(aeCfg, nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer aeSrv.Close()
	if _, err := aeSrv.Predict(make([]float64, aeCfg.Visible)); err == nil {
		t.Fatal("autoencoder Predict should be unsupported")
	}
}

// TestCheckpointLoad round-trips parameters through a PHCK file into a
// server and checks the served answers against the original parameters.
func TestCheckpointLoad(t *testing.T) {
	cfg := aeTestConfig()
	p := autoencoder.NewParams(cfg, 41)
	var blob bytes.Buffer
	if err := p.Save(&blob); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.phck")
	if err := core.WriteCheckpoint(path, &core.Checkpoint{Step: 5, Model: blob.Bytes()}); err != nil {
		t.Fatal(err)
	}

	m, err := AutoencoderFromCheckpoint(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	x := randExamples(1, cfg.Visible, 42)[0]
	got, err := srv.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, cfg.Hidden)
	p.Encode(x, want)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("checkpoint-served encode[%d] = %g, want %g", j, got[j], want[j])
		}
	}

	if _, err := AutoencoderFromCheckpoint(cfg, filepath.Join(t.TempDir(), "missing.phck")); err == nil {
		t.Fatal("missing checkpoint should fail")
	}
}

// TestCopyOnLoad verifies serving never sees mutations made to the source
// parameters after the Model was constructed.
func TestCopyOnLoad(t *testing.T) {
	cfg := aeTestConfig()
	p := autoencoder.NewParams(cfg, 51)
	m := Autoencoder(cfg, p)
	x := randExamples(1, cfg.Visible, 52)[0]
	want := make([]float64, cfg.Hidden)
	p.Encode(x, want)

	// Trash the source after load.
	p.W1.Fill(1e9)
	p.B1[0] = -1e9

	srv, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, err := srv.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("served encode[%d] = %g, want %g (weights not copied on load)", j, got[j], want[j])
		}
	}
}

// TestClose pins shutdown: pending work completes, later calls fail with
// ErrClosed, and Close is idempotent.
func TestClose(t *testing.T) {
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, nil), Config{MaxBatch: 64, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	x := randExamples(1, cfg.Visible, 61)[0]
	done := make(chan error, 1)
	go func() {
		_, err := srv.Encode(x)
		done <- err
	}()
	for srv.Stats().Requests < 1 {
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("pending request dropped by Close: %v", err)
	}
	if _, err := srv.Encode(x); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Encode error = %v, want ErrClosed", err)
	}
	srv.Close() // idempotent
}

// TestConcurrentStress drives many clients across ops and workers — the
// race detector's playground (ci runs this package with -race).
func TestConcurrentStress(t *testing.T) {
	cfg := aeTestConfig()
	p := autoencoder.NewParams(cfg, 71)
	srv, err := New(Autoencoder(cfg, p), Config{
		Level:    core.Improved,
		Workers:  3,
		MaxBatch: 8,
		MaxWait:  500 * time.Microsecond,
		Policy:   Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			xs := randExamples(perClient, cfg.Visible, uint64(100+c))
			for i, x := range xs {
				var out []float64
				var err error
				if i%2 == 0 {
					out, err = srv.Encode(x)
				} else {
					out, err = srv.Reconstruct(x)
				}
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if len(out) == 0 {
					t.Errorf("client %d: empty result", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Completed != clients*perClient {
		t.Fatalf("completed %d, want %d", st.Completed, clients*perClient)
	}
	if st.Batches == 0 || st.AvgBatchSize < 1 {
		t.Fatalf("no batching recorded: %+v", st)
	}
}

// TestConfigValidation sweeps the rejection paths.
func TestConfigValidation(t *testing.T) {
	cfg := aeTestConfig()
	m := Autoencoder(cfg, nil)
	bad := []Config{
		{Workers: -1},
		{PoolWorkers: -1},
		{MaxBatch: -2},
		{MaxWait: -time.Second},
		{MaxBatch: 8, QueueDepth: 4},
		{Policy: Policy(9)},
	}
	for i, c := range bad {
		if _, err := New(m, c); err == nil {
			t.Fatalf("config %d should be rejected: %+v", i, c)
		}
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil model should be rejected")
	}
	srv, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Encode(make([]float64, cfg.Visible+1)); err == nil {
		t.Fatal("wrong input length should be rejected")
	}
}
