package serve

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"phideep/internal/convnet"
	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func convTestConfig() convnet.Config {
	return convnet.Config{
		Side: 8, Filters1: 3, Kernel1: 3, Filters2: 4, Kernel2: 3,
		Pool: 2, Classes: 5, Batch: 4, Seed: 1,
	}
}

// TestConvnetServedMatchesDirectDevice is the convnet acceptance check: at
// every OptLevel, coalesced served predictions are bitwise equal to a
// direct single-example device forward at the same level, and match the
// scalar host reference bitwise at Baseline (1e-12 relative at the blocked
// levels, which regroup the K-summation).
func TestConvnetServedMatchesDirectDevice(t *testing.T) {
	cfg := convTestConfig()
	p := convnet.NewParams(cfg, 81)
	const n = 9
	xs := randExamples(n, cfg.InputDim(), 82)

	for _, lvl := range core.OptLevels {
		lvl := lvl
		t.Run(lvl.String(), func(t *testing.T) {
			srv, err := New(Convnet(cfg, p), Config{
				Level:    lvl,
				Workers:  2,
				MaxBatch: 4,
				MaxWait:  2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			dev := device.New(sim.XeonPhi5110P(), true, nil)
			ctx := core.NewContext(dev, lvl, 0, 99)
			direct, err := convnet.NewInference(ctx, cfg, 4, p)
			if err != nil {
				t.Fatal(err)
			}
			defer direct.Free()
			xbuf := dev.MustAlloc(4, cfg.InputDim())
			stage := tensor.NewMatrix(4, cfg.InputDim())

			served := make([][]float64, n)
			var wg sync.WaitGroup
			for i := range xs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					out, err := srv.Predict(xs[i])
					if err != nil {
						t.Errorf("Predict: %v", err)
						return
					}
					served[i] = out
				}(i)
			}
			wg.Wait()

			for i, x := range xs {
				copy(stage.RowView(0), x)
				dev.CopyIn(xbuf, stage, 0)
				out := direct.Infer(xbuf.Slice(0, 1))
				ref := tensor.NewMatrix(1, out.Cols)
				dev.CopyOut(out, ref)
				want := ref.RowView(0)
				hostWant := p.PredictProbs(cfg, x)

				for j := range want {
					if served[i][j] != want[j] {
						t.Fatalf("%s: served[%d][%d] = %g, direct device = %g (coalescing changed bits)",
							lvl, i, j, served[i][j], want[j])
					}
					if lvl == core.Baseline {
						if served[i][j] != hostWant[j] {
							t.Fatalf("Baseline: served[%d][%d] = %g, host reference = %g", i, j, served[i][j], hostWant[j])
						}
					} else if !closeRel(served[i][j], hostWant[j], 1e-12) {
						t.Fatalf("%s: served[%d][%d] = %g, host reference = %g beyond 1e-12", lvl, i, j, served[i][j], hostWant[j])
					}
				}
			}
		})
	}
}

// TestConvnetServedF32 checks the reduced-precision serving path against
// the f64 host reference within the float32 budget.
func TestConvnetServedF32(t *testing.T) {
	cfg := convTestConfig()
	p := convnet.NewParams(cfg, 91)
	srv, err := New(Convnet(cfg, p), Config{
		Level:     core.Improved,
		Precision: F32,
		MaxBatch:  4,
		MaxWait:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i, x := range randExamples(6, cfg.InputDim(), 92) {
		probs, err := srv.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want := p.PredictProbs(cfg, x)
		sum := 0.0
		for j := range want {
			if d := math.Abs(probs[j] - want[j]); d > 1e-4 {
				t.Fatalf("f32 probs[%d][%d] = %g, f64 reference %g (diff %g)", i, j, probs[j], want[j], d)
			}
			sum += probs[j]
		}
		if !closeRel(sum, 1, 1e-6) {
			t.Fatalf("probs sum %g", sum)
		}
	}
}

// TestUnsupportedOpTyped is the regression test for the Degrade fallback
// bug: an op the model family does not implement must return
// *UnsupportedOpError on every path — the normal admission path and the
// degraded full-queue path, which used to fall through to another family's
// forward pass (or panic).
func TestUnsupportedOpTyped(t *testing.T) {
	cfg := convTestConfig()
	srv, err := New(Convnet(cfg, nil), Config{Policy: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	x := make([]float64, cfg.InputDim())
	var uerr *UnsupportedOpError

	// Normal path.
	if _, err := srv.Encode(x); !errors.As(err, &uerr) {
		t.Fatalf("convnet Encode error = %v, want *UnsupportedOpError", err)
	}
	if uerr.Kind != "convnet" || uerr.Op != OpEncode {
		t.Fatalf("error fields %+v", uerr)
	}

	// Degraded path: saturate the queue so the request is answered inline,
	// where the old code indexed into a nil model family.
	release := forceFull(srv)
	defer release()
	if _, err := srv.Reconstruct(x); !errors.As(err, &uerr) {
		t.Fatalf("degraded convnet Reconstruct error = %v, want *UnsupportedOpError", err)
	}
	if uerr.Op != OpReconstruct {
		t.Fatalf("degraded error op %v", uerr.Op)
	}
	// A supported op must still be answered inline while degraded.
	out, err := srv.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != cfg.Classes {
		t.Fatalf("degraded predict returned %d classes, want %d", len(out), cfg.Classes)
	}
}

// TestConvnetCheckpointLoad round-trips convnet parameters through a PHCK
// file into a server.
func TestConvnetCheckpointLoad(t *testing.T) {
	cfg := convTestConfig()
	p := convnet.NewParams(cfg, 101)
	var blob bytes.Buffer
	if err := p.Save(&blob); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "convnet.phck")
	if err := core.WriteCheckpoint(path, &core.Checkpoint{Step: 3, Model: blob.Bytes()}); err != nil {
		t.Fatal(err)
	}

	m, err := ConvnetFromCheckpoint(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != "convnet" {
		t.Fatalf("kind %q", m.Kind())
	}
	srv, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	x := randExamples(1, cfg.InputDim(), 102)[0]
	got, err := srv.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	want := p.PredictProbs(cfg, x)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("checkpoint-served predict[%d] = %g, want %g", j, got[j], want[j])
		}
	}

	if _, err := ConvnetFromCheckpoint(cfg, filepath.Join(t.TempDir(), "missing.phck")); err == nil {
		t.Fatal("missing checkpoint should fail")
	}
}
