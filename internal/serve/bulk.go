package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"phideep/internal/feed"
	"phideep/internal/metrics"
	"phideep/internal/tensor"
)

// Bulk-scoring metric handles, same registry idiom as the request-path
// metrics in metrics.go.
var (
	mBulkChunks = metrics.Default().Counter("serve.bulk.chunks")
	mBulkRows   = metrics.Default().Counter("serve.bulk.rows")
	mBulkFailed = metrics.Default().Counter("serve.bulk.failed")
)

func recordBulkChunk(rows, failed int) {
	if !metrics.Enabled() {
		return
	}
	mBulkChunks.Inc()
	mBulkRows.Add(int64(rows))
	mBulkFailed.Add(int64(failed))
}

// BulkResult summarizes one ScoreFeed sweep.
type BulkResult struct {
	// Chunks is the number of leases scored; Rows the examples answered.
	Chunks int `json:"chunks"`
	Rows   int `json:"rows"`
	// Failed counts rows whose serving call errored (worker faults, the
	// Shed policy, expired deadlines). A chunk that loses every row is
	// committed with the feed's skipped flag, like a dropped training
	// chunk.
	Failed int `json:"failed"`
	// Correct and Labeled carry the free accuracy sweep: when the feed
	// serves labels and op is OpPredict, Correct counts rows whose argmax
	// matched the label.
	Correct int  `json:"correct"`
	Labeled bool `json:"labeled"`
	// Seconds is the wall-clock duration of the sweep.
	Seconds float64 `json:"seconds"`
}

// ScoreFeed is the feed-backed bulk-scoring path: the server becomes one
// consumer of a dataset feed and scores its shard chunk by chunk through
// the same admission queue, micro-batcher, and fault-tolerant workers as
// online traffic. Each leased chunk's rows are submitted concurrently (the
// batcher coalesces them into full batches, which is where the many-core
// throughput comes from), the lease commits when its rows settle, and out —
// when non-nil — receives each answered row in chunk order as (example
// index into the source, scores). The scores slice is owned by the
// callback.
//
// Row-level failures are counted and skipped, not fatal: a bulk sweep over
// a degraded server completes with Failed > 0 the same way a training run
// survives dropped chunks. Server-level failure (Close, every worker
// retired) aborts the sweep with the partial result. The sweep ends at the
// feed's TotalChunks horizon, or after one full pass over the consumer's
// shard when the feed is unbounded.
func (s *Server) ScoreFeed(op Op, fc *feed.Consumer, out func(example int, scores []float64)) (*BulkResult, error) {
	return s.ScoreFeedContext(context.Background(), op, fc, out)
}

// ScoreFeedContext is ScoreFeed honoring ctx: cancellation stops leasing
// new chunks and fails the in-flight rows, returning the partial result.
func (s *Server) ScoreFeedContext(ctx context.Context, op Op, fc *feed.Consumer, out func(example int, scores []float64)) (*BulkResult, error) {
	if fc == nil {
		return nil, errors.New("serve: nil feed consumer")
	}
	if !s.model.supports(op) {
		return nil, &UnsupportedOpError{Kind: s.model.Kind(), Op: op}
	}
	if d := fc.Dim(); d != s.model.InputDim() {
		return nil, fmt.Errorf("serve: feed serves %d-wide examples, model wants %d", d, s.model.InputDim())
	}
	plan := fc.Plan()
	// An unbounded feed would loop the source forever; stop the sweep after
	// one full pass over this consumer's shard.
	limit := fc.Pos() + plan.Chunks(plan.SourceLen/plan.Batch)
	stage := tensor.NewMatrix(plan.ChunkExamples, fc.Dim())
	scoreLabels := fc.Labeled() && op == OpPredict

	res := &BulkResult{Labeled: scoreLabels}
	start := time.Now()
	defer func() { res.Seconds = time.Since(start).Seconds() }()
	for fc.Pos() < limit {
		l, err := fc.Lease()
		if errors.Is(err, feed.ErrExhausted) {
			break
		}
		if err != nil {
			return res, fmt.Errorf("serve: bulk lease: %w", err)
		}
		if err := fc.Fill(l, stage); err != nil {
			// Unreachable after the geometry checks above; surface it
			// rather than silently committing garbage.
			fc.Commit(l, time.Since(start).Seconds(), true)
			return res, fmt.Errorf("serve: bulk fill: %w", err)
		}
		var labels []int
		if scoreLabels {
			if labels, err = fc.Labels(l); err != nil {
				fc.Commit(l, time.Since(start).Seconds(), true)
				return res, fmt.Errorf("serve: bulk labels: %w", err)
			}
		}

		// Submit the chunk's rows concurrently and let the micro-batcher
		// coalesce them; doCtx copies each row at admission, so the shared
		// staging matrix is safe to refill next lease.
		outs := make([][]float64, l.N)
		errs := make([]error, l.N)
		var wg sync.WaitGroup
		for i := 0; i < l.N; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i], errs[i] = s.doCtx(ctx, op, stage.RowView(i))
			}(i)
		}
		wg.Wait()

		failed, fatal := 0, error(nil)
		for i := 0; i < l.N; i++ {
			if errs[i] != nil {
				failed++
				if errors.Is(errs[i], ErrClosed) || errors.Is(errs[i], ErrDown) {
					fatal = errs[i]
				}
				continue
			}
			res.Rows++
			if scoreLabels && argmax(outs[i]) == labels[i] {
				res.Correct++
			}
			if out != nil {
				out((l.Start+i)%plan.SourceLen, outs[i])
			}
		}
		res.Chunks++
		res.Failed += failed
		recordBulkChunk(l.N-failed, failed)
		fc.Commit(l, time.Since(start).Seconds(), failed == l.N)
		if fatal != nil {
			return res, fmt.Errorf("serve: bulk sweep aborted: %w", fatal)
		}
		if ctx.Err() != nil {
			return res, ctxErr(ctx)
		}
	}
	return res, nil
}

// argmax returns the index of the largest score (first on ties).
func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
