package serve

import (
	"sync/atomic"
	"time"

	"phideep/internal/metrics"
)

// Metric handles, resolved once against the default registry; every record
// site is guarded by metrics.Enabled so a server with collection off pays
// one atomic load per event.
var (
	mRequests   = metrics.Default().Counter("serve.requests")
	mBatches    = metrics.Default().Counter("serve.batches")
	mSheds      = metrics.Default().Counter("serve.sheds")
	mDegrades   = metrics.Default().Counter("serve.degrades")
	mQueueDepth = metrics.Default().Gauge("serve.queue.depth")
	mBatchSize  = metrics.Default().Histogram("serve.batch.size", metrics.LinearBuckets(1, 1, 64)...)
	mLatency    = metrics.Default().Histogram("serve.latency.seconds", metrics.ExpBuckets(1e-6, 2, 24)...)

	mTuneBatch  = metrics.Default().Gauge("serve.tune.batch")
	mTuneWait   = metrics.Default().Gauge("serve.tune.wait.seconds")
	mTuneAdjust = metrics.Default().Counter("serve.tune.adjustments")

	mFaultBatches = metrics.Default().Counter("serve.fault.batches")
	mFaultRetries = metrics.Default().Counter("serve.fault.retries")
	mRedispatches = metrics.Default().Counter("serve.fault.redispatches")
	mRestarts     = metrics.Default().Counter("serve.restart.count")
	mRetired      = metrics.Default().Counter("serve.restart.retired")
	mDeadlines    = metrics.Default().Counter("serve.deadline.timeouts")
	mDiscarded    = metrics.Default().Counter("serve.deadline.discarded")
	mHealth       = metrics.Default().Gauge("serve.health")
)

func recordBatch(size int) {
	if !metrics.Enabled() {
		return
	}
	mRequests.Add(int64(size))
	mBatches.Inc()
	mBatchSize.Observe(float64(size))
}

func recordShed() {
	if metrics.Enabled() {
		mSheds.Inc()
	}
}

func recordDegrade() {
	if metrics.Enabled() {
		mDegrades.Inc()
	}
}

func recordQueueDepth(depth int) {
	if metrics.Enabled() {
		mQueueDepth.Set(float64(depth))
	}
}

func recordLatency(d time.Duration) {
	if metrics.Enabled() {
		mLatency.Observe(d.Seconds())
	}
}

// recordTune publishes the adaptive controller's effective knobs. Called
// once at startup (so the gauges exist even before the first adjustment)
// and on every change.
func recordTune(batch int, wait time.Duration) {
	if metrics.Enabled() {
		mTuneBatch.Set(float64(batch))
		mTuneWait.Set(wait.Seconds())
	}
}

func recordTuneAdjust() {
	if metrics.Enabled() {
		mTuneAdjust.Inc()
	}
}

func recordFaultBatch() {
	if metrics.Enabled() {
		mFaultBatches.Inc()
	}
}

func recordFaultRetry() {
	if metrics.Enabled() {
		mFaultRetries.Inc()
	}
}

func recordRedispatch() {
	if metrics.Enabled() {
		mRedispatches.Inc()
	}
}

func recordRestart() {
	if metrics.Enabled() {
		mRestarts.Inc()
	}
}

func recordRetire() {
	if metrics.Enabled() {
		mRetired.Inc()
	}
}

func recordDeadlineTimeout() {
	if metrics.Enabled() {
		mDeadlines.Inc()
	}
}

func recordDiscarded() {
	if metrics.Enabled() {
		mDiscarded.Inc()
	}
}

// recordHealth publishes the health state machine position as a gauge
// (0 healthy, 1 degraded, 2 draining, 3 down).
func recordHealth(h Health) {
	if metrics.Enabled() {
		mHealth.Set(float64(h))
	}
}

// counters is the server's always-on internal ledger backing Stats.
type counters struct {
	requests      atomic.Int64
	batches       atomic.Int64
	flushFull     atomic.Int64
	flushDeadline atomic.Int64
	sheds         atomic.Int64
	degrades      atomic.Int64
	completed     atomic.Int64
	batchSizeSum  atomic.Int64
	latencyNanos  atomic.Int64
	adjustments   atomic.Int64

	faultBatches     atomic.Int64
	faultRetries     atomic.Int64
	redispatches     atomic.Int64
	restarts         atomic.Int64
	retired          atomic.Int64
	deadlineTimeouts atomic.Int64
	discarded        atomic.Int64
}

// BatcherStats is a point-in-time snapshot of the micro-batcher, returned
// by Server.Stats.
type BatcherStats struct {
	// Precision names the worker forward path ("f64" or "f32"), so a
	// metrics consumer can attribute the latency series to the numeric
	// width that produced it.
	Precision string
	// Requests counts admitted requests; Completed those already answered
	// by a worker (degraded answers count in Degrades only).
	Requests  int64
	Completed int64
	// Batches counts dispatched batches; FlushFull of them flushed at
	// MaxBatch and FlushDeadline on the MaxWait timer (Close-time flushes
	// count as deadline flushes).
	Batches       int64
	FlushFull     int64
	FlushDeadline int64
	// Sheds and Degrades count full-queue rejections and host-path
	// fallbacks under the respective policies.
	Sheds    int64
	Degrades int64
	// QueueDepth is the current number of admitted, not-yet-dispatched
	// requests.
	QueueDepth int
	// AvgBatchSize is Requests-weighted mean coalescing achieved.
	AvgBatchSize float64
	// MeanLatencySeconds is the mean enqueue-to-answer latency of
	// completed requests. Percentiles belong to the caller: the phiserve
	// load generator computes p50/p99 from its own samples.
	MeanLatencySeconds float64
	// Adaptive reports whether the online batching controller is on;
	// CurMaxBatch and CurMaxWait are its current effective knobs (equal to
	// the configured MaxBatch/MaxWait when static or untouched), and
	// Adjustments counts the knob changes it has applied.
	Adaptive    bool
	CurMaxBatch int
	CurMaxWait  time.Duration
	Adjustments int64
	// Health is the availability state machine position ("healthy",
	// "degraded", "draining", "down"); WorkersLive of WorkersConfigured
	// worker slots have not retired.
	Health            string
	WorkersLive       int
	WorkersConfigured int
	// FaultBatches counts batches that faulted out of a worker (transfer
	// faults surviving the retry budgets, or recovered panics);
	// FaultRetries the serve-level transfer re-attempts that preceded
	// them; Redispatches the faulted batches salvaged by a healthy
	// replica.
	FaultBatches int64
	FaultRetries int64
	Redispatches int64
	// Restarts counts worker rebuilds on fresh devices; Retired the slots
	// whose restart budget ran out.
	Restarts int64
	Retired  int64
	// DeadlineTimeouts counts requests abandoned at their deadline (or
	// ctx expiry); Discarded the late worker results thrown away for
	// already-abandoned requests.
	DeadlineTimeouts int64
	Discarded        int64
}

// Stats returns a consistent-enough snapshot of the batcher counters (each
// field is read atomically; the set is not a single atomic cut).
func (s *Server) Stats() BatcherStats {
	st := BatcherStats{
		Precision:     s.cfg.Precision.String(),
		Requests:      s.st.requests.Load(),
		Completed:     s.st.completed.Load(),
		Batches:       s.st.batches.Load(),
		FlushFull:     s.st.flushFull.Load(),
		FlushDeadline: s.st.flushDeadline.Load(),
		Sheds:         s.st.sheds.Load(),
		Degrades:      s.st.degrades.Load(),
		Adaptive:      s.cfg.Adaptive,
		Adjustments:   s.st.adjustments.Load(),

		WorkersConfigured: s.cfg.Workers,
		FaultBatches:      s.st.faultBatches.Load(),
		FaultRetries:      s.st.faultRetries.Load(),
		Redispatches:      s.st.redispatches.Load(),
		Restarts:          s.st.restarts.Load(),
		Retired:           s.st.retired.Load(),
		DeadlineTimeouts:  s.st.deadlineTimeouts.Load(),
		Discarded:         s.st.discarded.Load(),
	}
	s.mu.Lock()
	st.QueueDepth = s.queued
	st.CurMaxBatch = s.curBatch
	st.CurMaxWait = s.curWait
	st.WorkersLive = s.live
	st.Health = s.healthLocked().String()
	s.mu.Unlock()
	if st.Batches > 0 {
		st.AvgBatchSize = float64(s.st.batchSizeSum.Load()) / float64(st.Batches)
	}
	if st.Completed > 0 {
		st.MeanLatencySeconds = float64(s.st.latencyNanos.Load()) / float64(st.Completed) / 1e9
	}
	return st
}
