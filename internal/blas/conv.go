package blas

import (
	"fmt"

	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/sim"
)

// Convolution primitives (DESIGN.md §12). Device buffers carry whatever
// 2-D geometry their producing GEMM needed; the conv kernels address the
// underlying NHWC storage flatly, so only total element counts are
// validated here. The lowered conv GEMM itself is issued through the plain
// Gemm method — it needs no conv-specific costing because its shape
// (batch·oHW × ColK × F) already flows through the OpGemm roofline.

// checkConvTotal validates that buf holds exactly want elements.
func checkConvTotal(op string, buf *device.Buffer, want int) {
	if buf.Rows*buf.Cols != want {
		panic(fmt.Sprintf("blas: %s buffer %dx%d = %d elements, want %d", op, buf.Rows, buf.Cols, buf.Rows*buf.Cols, want))
	}
}

// Im2col gathers batch NHWC images from x into the patch matrix cols
// ((batch·OutH·OutW)×ColK), the lowering that turns convolution into one
// packed GEMM. x must hold batch·InDim elements.
func (c *Context) Im2col(s kernels.ConvShape, batch int, x, cols *device.Buffer) {
	checkConvTotal("Im2col input", x, batch*s.InDim())
	checkConvTotal("Im2col cols", cols, batch*s.OutH()*s.OutW()*s.ColK())
	// 2 flops of index arithmetic per gathered element; 24 B/elem = the
	// source read + patch write plus edge handling slack.
	c.exec(c.op(sim.OpIm2col, batch, s.ColK(), s.OutH()*s.OutW(), batch*s.OutH()*s.OutW()*s.ColK(), 2, 24),
		[]*device.Buffer{x}, []*device.Buffer{cols},
		func() { kernels.Im2col(c.Dev.Pool, c.Level, s, batch, x.Mat, cols.Mat) })
}

// Col2im scatters patch-matrix gradients dcols back into image gradients
// dx (zeroing dx first) — the adjoint of Im2col, used to backpropagate
// through a conv layer's input.
func (c *Context) Col2im(s kernels.ConvShape, batch int, dcols, dx *device.Buffer) {
	checkConvTotal("Col2im dcols", dcols, batch*s.OutH()*s.OutW()*s.ColK())
	checkConvTotal("Col2im dx", dx, batch*s.InDim())
	// The scatter read-modify-writes the image gradient: 32 B/elem.
	c.exec(c.op(sim.OpCol2im, batch, s.ColK(), s.OutH()*s.OutW(), batch*s.OutH()*s.OutW()*s.ColK(), 3, 32),
		[]*device.Buffer{dcols}, []*device.Buffer{dx},
		func() { kernels.Col2im(c.Dev.Pool, c.Level, s, batch, dcols.Mat, dx.Mat) })
}

// MaxPool computes per-channel window maxima of batch NHWC images held in
// x, writing maxima to y and flat per-image winner indices to arg (both
// batch·OutDim elements).
func (c *Context) MaxPool(s kernels.PoolShape, batch int, x, y, arg *device.Buffer) {
	checkConvTotal("MaxPool input", x, batch*s.InDim())
	checkConvTotal("MaxPool output", y, batch*s.OutDim())
	checkConvTotal("MaxPool argmax", arg, batch*s.OutDim())
	win := s.Size * s.Size
	c.exec(c.op(sim.OpPool, batch, 0, 0, batch*s.OutDim(), float64(win), float64(8*win+16)),
		[]*device.Buffer{x}, []*device.Buffer{y, arg},
		func() { kernels.MaxPool(c.Dev.Pool, c.Level, s, batch, x.Mat, y.Mat, arg.Mat) })
}

// MaxPoolBackward routes output gradients dy back to dx through the argmax
// recorded by MaxPool, zeroing dx first.
func (c *Context) MaxPoolBackward(s kernels.PoolShape, batch int, dy, arg, dx *device.Buffer) {
	checkConvTotal("MaxPoolBackward dy", dy, batch*s.OutDim())
	checkConvTotal("MaxPoolBackward argmax", arg, batch*s.OutDim())
	checkConvTotal("MaxPoolBackward dx", dx, batch*s.InDim())
	c.exec(c.op(sim.OpPool, batch, 0, 0, batch*s.OutDim(), 2, 40),
		[]*device.Buffer{dy, arg}, []*device.Buffer{dx},
		func() { kernels.MaxPoolBackward(c.Dev.Pool, c.Level, s, batch, dy.Mat, arg.Mat, dx.Mat) })
}

// ConvBiasGrad reduces the lowered conv gradient dOut ((batch·oHW)×F) to
// the 1×F bias gradient db, filter blocks partitioned across workers (the
// model-parallel axis of the CHAOS split).
func (c *Context) ConvBiasGrad(dOut, db *device.Buffer) {
	if db.Rows != 1 || db.Cols != dOut.Cols {
		panic(fmt.Sprintf("blas: ConvBiasGrad db %dx%d for dOut %dx%d", db.Rows, db.Cols, dOut.Rows, dOut.Cols))
	}
	c.exec(c.op(sim.OpReduce, 0, 0, 0, dOut.Rows*dOut.Cols, 1, 8),
		[]*device.Buffer{dOut}, []*device.Buffer{db},
		func() { kernels.ConvBiasGrad(c.Dev.Pool, c.Level, dOut.Mat, db.Mat) })
}
