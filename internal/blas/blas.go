// Package blas is phideep's stand-in for the Intel MKL layer of the paper:
// typed linear-algebra and neural-net primitives that execute on a
// device.Device, charging the simulated cost of each launch and (on numeric
// devices) running the matching internal/kernels implementation.
//
// A Context carries the execution configuration of the Table I ladder — the
// kernel Level, whether elementwise loops are VPU-vectorized, how many
// cores and threads per core to use — plus the loop-fusion state used by
// the "Improved OpenMP+MKL" row. Models call Context methods exclusively;
// they never touch kernels or the device directly, so one switch of the
// Context replays an entire training run at a different optimization level.
package blas

import (
	"fmt"

	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
)

// Context is an execution configuration bound to a device. Contexts are
// cheap values; derive variants by copying and adjusting fields.
type Context struct {
	Dev *device.Device

	// Level selects the kernel implementation ladder step.
	Level kernels.Level
	// Vector marks kernels as VPU-vectorized for the cost model. The
	// numeric kernels are the same either way (Go has no intrinsics); the
	// simulated time differs, which is the paper-relevant effect.
	Vector bool
	// Cores/ThreadsPerCore bound the launch configuration (0 = arch
	// defaults). Table I's right column is Cores=30.
	Cores          int
	ThreadsPerCore int

	// RNG drives sampling kernels (CD-k Gibbs steps).
	RNG *rng.RNG

	// AutoFuse enables the loop-fusion optimization: models wrap their
	// update loops in MaybeFused, which fuses only when this is set (the
	// "Improved OpenMP+MKL" row of Table I).
	AutoFuse bool
	// AutoConcurrent enables the Fig. 6 dependency-graph scheduling:
	// models wrap independent op groups in MaybeConcurrent.
	AutoConcurrent bool

	// fusion state; see Fused.
	fused     bool
	fuseFirst bool
	// recording collects ops for a Concurrent group; see Concurrent.
	recording *[]device.Branch
}

// NewContext returns a context at the given ladder level with the
// conventional vectorization for that level (only the MKL-grade
// ParallelBlocked kernels are vectorized, as in the paper).
func NewContext(dev *device.Device, lvl kernels.Level, seed uint64) *Context {
	return &Context{
		Dev:    dev,
		Level:  lvl,
		Vector: lvl == kernels.ParallelBlocked,
		RNG:    rng.New(seed),
	}
}

// Fused runs body as one fused parallel region: the fork/join cost is
// charged once for the first kernel and suppressed for the rest. This is
// the loop-combining optimization of §IV.B.2 ("we finally combine several
// loops together to make the granularity more suitable"). Fused regions do
// not nest.
func (c *Context) Fused(body func()) {
	if c.fused {
		panic("blas: nested Fused regions")
	}
	c.fused = true
	c.fuseFirst = true
	defer func() { c.fused = false }()
	body()
}

// Concurrent runs body, capturing every kernel it issues, and launches the
// captured kernels as one concurrent group on the device (Fig. 6: matrix
// operations with no dependency edges between them execute at the same
// time, sharing the cores and a single fork/join). The kernels issued
// inside body must be mutually independent; value-returning reductions are
// not allowed inside a Concurrent region. Concurrent regions do not nest
// and may not appear inside Fused.
func (c *Context) Concurrent(body func()) {
	if c.recording != nil {
		panic("blas: nested Concurrent regions")
	}
	if c.fused {
		panic("blas: Concurrent inside Fused")
	}
	var branches []device.Branch
	c.recording = &branches
	func() {
		defer func() { c.recording = nil }()
		body()
	}()
	c.Dev.ExecConcurrent(branches)
}

// MaybeFused runs body under Fused when AutoFuse is set, else plainly.
func (c *Context) MaybeFused(body func()) {
	if c.AutoFuse {
		c.Fused(body)
	} else {
		body()
	}
}

// MaybeConcurrent runs body under Concurrent when AutoConcurrent is set,
// else plainly (the ops then execute in issue order).
func (c *Context) MaybeConcurrent(body func()) {
	if c.AutoConcurrent {
		c.Concurrent(body)
	} else {
		body()
	}
}

// exec issues one kernel, either immediately or into the surrounding
// Concurrent recording.
func (c *Context) exec(op sim.Op, deps, writes []*device.Buffer, fn func()) {
	if c.recording != nil {
		*c.recording = append(*c.recording, device.Branch{Op: op, Deps: deps, Writes: writes, Fn: fn})
		return
	}
	c.Dev.Exec(op, deps, writes, fn)
}

// op assembles a sim.Op with the context's configuration and fusion state.
func (c *Context) op(kind sim.OpKind, m, k, n, elems int, flopsPerElem, bytesPerElem float64) sim.Op {
	fusedAway := false
	if c.fused {
		fusedAway = !c.fuseFirst
		c.fuseFirst = false
	}
	return sim.Op{
		Kind: kind, M: m, K: k, N: n,
		Elems: elems, FlopsPerElem: flopsPerElem, BytesPerElem: bytesPerElem,
		Level: c.Level, Cores: c.Cores, ThreadsPerCore: c.ThreadsPerCore,
		Vector: c.Vector, Fused: fusedAway,
	}
}

func opShape(b *device.Buffer, trans bool) (int, int) {
	if trans {
		return b.Cols, b.Rows
	}
	return b.Rows, b.Cols
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C on the device.
func (c *Context) Gemm(transA, transB bool, alpha float64, a, b *device.Buffer, beta float64, dst *device.Buffer) {
	m, ka := opShape(a, transA)
	kb, n := opShape(b, transB)
	if ka != kb || dst.Rows != m || dst.Cols != n {
		panic(fmt.Sprintf("blas: Gemm shape mismatch: op(A)=%dx%d op(B)=%dx%d C=%dx%d", m, ka, kb, n, dst.Rows, dst.Cols))
	}
	c.exec(c.op(sim.OpGemm, m, ka, n, 0, 0, 0),
		[]*device.Buffer{a, b, dst}, []*device.Buffer{dst},
		func() {
			kernels.Gemm(c.Dev.Pool, c.Level, transA, transB, alpha, a.Mat, b.Mat, beta, dst.Mat)
		})
}

// Sigmoid computes dst = σ(src) elementwise (Eqs. 14–15 in vector form).
func (c *Context) Sigmoid(dst, src *device.Buffer) {
	c.exec(c.op(sim.OpElem, 0, 0, 0, src.Rows*src.Cols, 20, 16),
		[]*device.Buffer{src}, []*device.Buffer{dst},
		func() { kernels.Sigmoid(c.Dev.Pool, c.Level, dst.Mat, src.Mat) })
}

// SigmoidPrimeFromY computes dst = y⊙(1−y).
func (c *Context) SigmoidPrimeFromY(dst, y *device.Buffer) {
	c.exec(c.op(sim.OpElem, 0, 0, 0, y.Rows*y.Cols, 2, 16),
		[]*device.Buffer{y}, []*device.Buffer{dst},
		func() { kernels.SigmoidPrimeFromY(c.Dev.Pool, c.Level, dst.Mat, y.Mat) })
}

// AddBiasRow adds the 1×n bias buffer to every row of m.
func (c *Context) AddBiasRow(m, bias *device.Buffer) {
	if bias.Rows != 1 || bias.Cols != m.Cols {
		panic(fmt.Sprintf("blas: AddBiasRow bias %dx%d for matrix %dx%d", bias.Rows, bias.Cols, m.Rows, m.Cols))
	}
	c.exec(c.op(sim.OpElem, 0, 0, 0, m.Rows*m.Cols, 1, 16),
		[]*device.Buffer{m, bias}, []*device.Buffer{m},
		func() { kernels.AddBiasRow(c.Dev.Pool, c.Level, m.Mat, bias.Mat.RowView(0)) })
}
