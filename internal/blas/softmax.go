package blas

import (
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/sim"
)

// SoftmaxRows computes dst = row-wise softmax(src) — the classification
// head of the fine-tuned deep network.
func (c *Context) SoftmaxRows(dst, src *device.Buffer) {
	checkSame("SoftmaxRows", dst, src)
	c.exec(c.op(sim.OpElem, 0, 0, 0, src.Rows*src.Cols, 25, 16),
		[]*device.Buffer{src}, []*device.Buffer{dst},
		func() { kernels.SoftmaxRows(c.Dev.Pool, c.Level, dst.Mat, src.Mat) })
}

// CrossEntropyOneHot returns −Σ y·log(p) for one-hot targets (0 on
// model-only devices).
func (c *Context) CrossEntropyOneHot(p, y *device.Buffer) float64 {
	checkSame("CrossEntropyOneHot", p, y)
	out := 0.0
	c.exec(c.op(sim.OpReduce, 0, 0, 0, p.Rows*p.Cols, 3, 16),
		[]*device.Buffer{p, y}, nil,
		func() { out = kernels.CrossEntropyOneHot(c.Dev.Pool, c.Level, p.Mat, y.Mat) })
	return out
}

// CountArgmaxMatches returns the number of rows classified correctly
// against one-hot targets (0 on model-only devices).
func (c *Context) CountArgmaxMatches(p, y *device.Buffer) int {
	checkSame("CountArgmaxMatches", p, y)
	out := 0
	c.exec(c.op(sim.OpReduce, 0, 0, 0, p.Rows*p.Cols, 2, 16),
		[]*device.Buffer{p, y}, nil,
		func() { out = kernels.CountArgmaxMatches(c.Dev.Pool, c.Level, p.Mat, y.Mat) })
	return out
}
