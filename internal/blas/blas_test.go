package blas

import (
	"math"
	"testing"

	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func numericCtx(lvl kernels.Level) *Context {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	return NewContext(dev, lvl, 1)
}

func upload(ctx *Context, m *tensor.Matrix) *device.Buffer {
	b := ctx.Dev.MustAlloc(m.Rows, m.Cols)
	ctx.Dev.CopyIn(b, m, 0)
	return b
}

func TestGemmNumericMatchesKernels(t *testing.T) {
	for _, lvl := range kernels.Levels {
		ctx := numericCtx(lvl)
		a := tensor.NewMatrix(4, 5).Randomize(ctx.RNG, -1, 1)
		b := tensor.NewMatrix(5, 3).Randomize(ctx.RNG, -1, 1)
		da, db := upload(ctx, a), upload(ctx, b)
		dc := ctx.Dev.MustAlloc(4, 3)
		ctx.Gemm(false, false, 2, da, db, 0, dc)
		want := tensor.NewMatrix(4, 3)
		kernels.Gemm(nil, kernels.Naive, false, false, 2, a, b, 0, want)
		if d := tensor.MaxAbsDiff(want, dc.Mat); d > 1e-12 {
			t.Errorf("level %v: diff %g", lvl, d)
		}
	}
}

func TestGemmShapePanics(t *testing.T) {
	ctx := numericCtx(kernels.Naive)
	a := ctx.Dev.MustAlloc(2, 3)
	b := ctx.Dev.MustAlloc(4, 5)
	c := ctx.Dev.MustAlloc(2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.Gemm(false, false, 1, a, b, 0, c)
}

func TestElementwiseOpsNumeric(t *testing.T) {
	ctx := numericCtx(kernels.ParallelBlocked)
	x := tensor.FromRows([][]float64{{0, 2}, {-2, 1}})
	dx := upload(ctx, x)
	dy := ctx.Dev.MustAlloc(2, 2)

	ctx.Sigmoid(dy, dx)
	if math.Abs(dy.Mat.At(0, 0)-0.5) > 1e-15 {
		t.Fatal("Sigmoid")
	}
	ctx.SigmoidPrimeFromY(dy, dy)
	if math.Abs(dy.Mat.At(0, 0)-0.25) > 1e-15 {
		t.Fatal("SigmoidPrime")
	}
	bias := upload(ctx, tensor.FromRows([][]float64{{10, 20}}))
	ctx.AddBiasRow(dx, bias)
	if dx.Mat.At(1, 1) != 21 {
		t.Fatal("AddBiasRow")
	}
	ctx.Axpy(2, dx, dx)
	if dx.Mat.At(0, 0) != 30 {
		t.Fatalf("Axpy got %g", dx.Mat.At(0, 0))
	}
	ctx.Scale(0.1, dx)
	if math.Abs(dx.Mat.At(0, 0)-3) > 1e-12 {
		t.Fatal("Scale")
	}
	dz := ctx.Dev.MustAlloc(2, 2)
	ctx.Sub(dz, dx, dx)
	if dz.Mat.Sum() != 0 {
		t.Fatal("Sub")
	}
	ctx.MulElem(dz, dx, dx)
	if math.Abs(dz.Mat.At(0, 0)-9) > 1e-10 {
		t.Fatal("MulElem")
	}
}

func TestReductionsNumeric(t *testing.T) {
	ctx := numericCtx(kernels.Parallel)
	m := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	dm := upload(ctx, m)
	out := ctx.Dev.MustAlloc(1, 2)
	ctx.ColSums(dm, out)
	if out.Mat.At(0, 0) != 4 || out.Mat.At(0, 1) != 6 {
		t.Fatal("ColSums")
	}
	other := upload(ctx, tensor.FromRows([][]float64{{1, 2}, {3, 0}}))
	if got := ctx.SumSquaredDiff(dm, other); got != 16 {
		t.Fatalf("SumSquaredDiff %g", got)
	}
	if got := ctx.SumSquares(dm); got != 30 {
		t.Fatalf("SumSquares %g", got)
	}
	means := ctx.MeanActivations(dm, out)
	if !tensor.EqualVec(means, tensor.Vector{2, 3}, 0) {
		t.Fatalf("MeanActivations %v", means)
	}
}

func TestReductionsModelOnlyReturnZero(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := NewContext(dev, kernels.ParallelBlocked, 1)
	a := dev.MustAlloc(3, 3)
	b := dev.MustAlloc(3, 3)
	if ctx.SumSquaredDiff(a, b) != 0 || ctx.SumSquares(a) != 0 {
		t.Fatal("model-only reductions must be 0")
	}
	scratch := dev.MustAlloc(1, 3)
	if ctx.MeanActivations(a, scratch).Sum() != 0 {
		t.Fatal("model-only means must be 0")
	}
}

func TestFusedChargesSyncOnce(t *testing.T) {
	run := func(fuse bool) float64 {
		dev := device.New(sim.XeonPhi5110P(), false, nil)
		ctx := NewContext(dev, kernels.ParallelBlocked, 1)
		a := dev.MustAlloc(10, 10)
		body := func() {
			ctx.Scale(1, a)
			ctx.Scale(1, a)
			ctx.Scale(1, a)
		}
		if fuse {
			ctx.Fused(body)
		} else {
			body()
		}
		return dev.Now()
	}
	unfused, fused := run(false), run(true)
	saving := unfused - fused
	want := 2 * sim.XeonPhi5110P().SyncCost(240)
	if math.Abs(saving-want) > 1e-9 {
		t.Fatalf("fusion saving %g, want %g", saving, want)
	}
}

func TestFusedNestingPanics(t *testing.T) {
	ctx := numericCtx(kernels.Naive)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.Fused(func() { ctx.Fused(func() {}) })
}

func TestConcurrentProducesSameNumbers(t *testing.T) {
	// The Fig. 6 schedule must not change results, only timing.
	mk := func(concurrent bool) *tensor.Matrix {
		ctx := numericCtx(kernels.ParallelBlocked)
		x := tensor.NewMatrix(6, 6).Randomize(ctx.RNG, -1, 1)
		dx := upload(ctx, x)
		da := ctx.Dev.MustAlloc(6, 6)
		db := ctx.Dev.MustAlloc(6, 6)
		body := func() {
			ctx.Gemm(false, false, 1, dx, dx, 0, da)
			ctx.Gemm(false, true, 1, dx, dx, 0, db)
		}
		if concurrent {
			ctx.Concurrent(body)
		} else {
			body()
		}
		sum := tensor.NewMatrix(6, 6)
		kernels.Sub(nil, kernels.Naive, sum, da.Mat, db.Mat)
		return sum
	}
	a, b := mk(false), mk(true)
	if d := tensor.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("concurrent schedule changed results by %g", d)
	}
}

func TestConcurrentGuards(t *testing.T) {
	ctx := numericCtx(kernels.Naive)
	for _, f := range []func(){
		func() { ctx.Concurrent(func() { ctx.Concurrent(func() {}) }) },
		func() { ctx.Fused(func() { ctx.Concurrent(func() {}) }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSampleBernoulliStreamAlignment(t *testing.T) {
	// Numeric and model-only devices must advance the RNG identically, so
	// a model-only timing run of a stochastic model replays the same
	// simulated op sequence as a numeric one.
	num := numericCtx(kernels.Naive)
	mod := NewContext(device.New(sim.XeonPhi5110P(), false, nil), kernels.Naive, 1)
	p := tensor.NewMatrix(3, 3)
	p.Fill(0.5)
	dpn := upload(num, p)
	dn := num.Dev.MustAlloc(3, 3)
	dpm := mod.Dev.MustAlloc(3, 3)
	dm := mod.Dev.MustAlloc(3, 3)
	for i := 0; i < 3; i++ {
		num.SampleBernoulli(dn, dpn)
		mod.SampleBernoulli(dm, dpm)
	}
	if num.RNG.Uint64() != mod.RNG.Uint64() {
		t.Fatal("RNG streams diverged between numeric and model-only runs")
	}
}

func TestAddKLSparsityDeltaAndKLDivergence(t *testing.T) {
	ctx := numericCtx(kernels.Naive)
	delta := upload(ctx, tensor.FromRows([][]float64{{1, 1}}))
	dY := upload(ctx, tensor.FromRows([][]float64{{2, 3}}))
	ctx.AddKLSparsityDelta(delta, tensor.Vector{1, 2}, dY)
	if delta.Mat.At(0, 0) != 4 || delta.Mat.At(0, 1) != 9 {
		t.Fatalf("AddKLSparsityDelta %v", delta.Mat)
	}
	// KL(ρ‖ρ) = 0; KL grows away from ρ; extreme ρ̂ stays finite.
	if kl := KLDivergence(0.05, tensor.Vector{0.05, 0.05}); kl > 1e-12 {
		t.Fatalf("KL at target %g", kl)
	}
	if KLDivergence(0.05, tensor.Vector{0.5}) <= 0 {
		t.Fatal("KL away from target must be positive")
	}
	if v := KLDivergence(0.05, tensor.Vector{0, 1}); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatal("KL not clamped")
	}
}

func TestNewContextVectorDefaults(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	if NewContext(dev, kernels.ParallelBlocked, 1).Vector != true {
		t.Fatal("MKL level should vectorize")
	}
	for _, lvl := range []kernels.Level{kernels.Naive, kernels.Blocked, kernels.Parallel} {
		if NewContext(dev, lvl, 1).Vector {
			t.Fatalf("level %v should not vectorize", lvl)
		}
	}
}

func TestMaybeHelpersRespectFlags(t *testing.T) {
	run := func(autoFuse bool) float64 {
		dev := device.New(sim.XeonPhi5110P(), false, nil)
		ctx := NewContext(dev, kernels.ParallelBlocked, 1)
		ctx.AutoFuse = autoFuse
		ctx.AutoConcurrent = autoFuse
		a := dev.MustAlloc(4, 4)
		b := dev.MustAlloc(4, 4)
		ctx.MaybeFused(func() {
			ctx.Scale(1, a)
			ctx.Scale(1, a)
		})
		ctx.MaybeConcurrent(func() {
			ctx.Scale(1, a)
			ctx.Scale(1, b)
		})
		return dev.Now()
	}
	if !(run(true) < run(false)) {
		t.Fatal("AutoFuse/AutoConcurrent made no timing difference")
	}
}

func TestSoftmaxWrappers(t *testing.T) {
	ctx := numericCtx(kernels.ParallelBlocked)
	src := upload(ctx, tensor.FromRows([][]float64{{2, 1, 0}, {0, 0, 5}}))
	dst := ctx.Dev.MustAlloc(2, 3)
	ctx.SoftmaxRows(dst, src)
	for i := 0; i < 2; i++ {
		sum := 0.0
		for _, v := range dst.Mat.RowView(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	y := upload(ctx, tensor.FromRows([][]float64{{1, 0, 0}, {0, 0, 1}}))
	ce := ctx.CrossEntropyOneHot(dst, y)
	if ce <= 0 {
		t.Fatalf("cross entropy %g", ce)
	}
	if got := ctx.CountArgmaxMatches(dst, y); got != 2 {
		t.Fatalf("matches %d", got)
	}
}

func TestAddGaussianNoiseWrapperStreamAlignment(t *testing.T) {
	num := numericCtx(kernels.Naive)
	mod := NewContext(device.New(sim.XeonPhi5110P(), false, nil), kernels.Naive, 1)
	mean := upload(num, tensor.NewMatrix(3, 3))
	dn := num.Dev.MustAlloc(3, 3)
	mm := mod.Dev.MustAlloc(3, 3)
	md := mod.Dev.MustAlloc(3, 3)
	num.AddGaussianNoise(dn, mean, 1)
	mod.AddGaussianNoise(md, mm, 1)
	if num.RNG.Uint64() != mod.RNG.Uint64() {
		t.Fatal("RNG streams diverged between modes")
	}
	if dn.Mat.SumSquares() == 0 {
		t.Fatal("no noise added")
	}
}
