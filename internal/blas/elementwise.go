package blas

import (
	"fmt"
	"math"

	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// Axpy computes y += alpha·x over equally shaped buffers (the vectorized
// parameter update of Eqs. 16–18).
func (c *Context) Axpy(alpha float64, x, y *device.Buffer) {
	checkSame("Axpy", x, y)
	c.exec(c.op(sim.OpElem, 0, 0, 0, x.Rows*x.Cols, 2, 24),
		[]*device.Buffer{x, y}, []*device.Buffer{y},
		func() { kernels.Axpy(c.Dev.Pool, c.Level, alpha, x.Mat, y.Mat) })
}

// Scale multiplies every element of m by alpha.
func (c *Context) Scale(alpha float64, m *device.Buffer) {
	c.exec(c.op(sim.OpElem, 0, 0, 0, m.Rows*m.Cols, 1, 16),
		[]*device.Buffer{m}, []*device.Buffer{m},
		func() { kernels.Scale(c.Dev.Pool, c.Level, alpha, m.Mat) })
}

// Sub computes dst = a − b elementwise.
func (c *Context) Sub(dst, a, b *device.Buffer) {
	checkSame("Sub", a, b)
	checkSame("Sub", dst, a)
	c.exec(c.op(sim.OpElem, 0, 0, 0, a.Rows*a.Cols, 1, 24),
		[]*device.Buffer{a, b}, []*device.Buffer{dst},
		func() { kernels.Sub(c.Dev.Pool, c.Level, dst.Mat, a.Mat, b.Mat) })
}

// MulElem computes dst = a ⊙ b.
func (c *Context) MulElem(dst, a, b *device.Buffer) {
	checkSame("MulElem", a, b)
	checkSame("MulElem", dst, a)
	c.exec(c.op(sim.OpElem, 0, 0, 0, a.Rows*a.Cols, 1, 24),
		[]*device.Buffer{a, b}, []*device.Buffer{dst},
		func() { kernels.MulElem(c.Dev.Pool, c.Level, dst.Mat, a.Mat, b.Mat) })
}

// ColSums reduces m's columns into the 1×Cols buffer out.
func (c *Context) ColSums(m, out *device.Buffer) {
	if out.Rows != 1 || out.Cols != m.Cols {
		panic(fmt.Sprintf("blas: ColSums output %dx%d for matrix %dx%d", out.Rows, out.Cols, m.Rows, m.Cols))
	}
	c.exec(c.op(sim.OpReduce, 0, 0, 0, m.Rows*m.Cols, 1, 8),
		[]*device.Buffer{m}, []*device.Buffer{out},
		func() { kernels.ColSums(c.Dev.Pool, c.Level, m.Mat, tensor.Vector(out.Mat.RowView(0))) })
}

// SampleBernoulli draws dst[i,j] ∈ {0,1} with probability p[i,j] — the
// stochastic unit sampling of the CD-k Gibbs chain.
func (c *Context) SampleBernoulli(dst, p *device.Buffer) {
	checkSame("SampleBernoulli", dst, p)
	// Advance the context RNG exactly once per launch even in model-only
	// mode, so numeric and model runs stay stream-aligned.
	seedDraw := c.RNG
	c.exec(c.op(sim.OpSample, 0, 0, 0, p.Rows*p.Cols, 30, 16),
		[]*device.Buffer{p}, []*device.Buffer{dst},
		func() { kernels.SampleBernoulli(c.Dev.Pool, c.Level, dst.Mat, p.Mat, seedDraw) })
	if !c.Dev.Numeric {
		_ = seedDraw.Uint64()
	}
}

// SumSquaredDiff returns Σ(a−b)² — the reconstruction error numerator of
// Eq. 3. On a model-only device the value is necessarily 0; callers must
// treat losses from such devices as unavailable.
func (c *Context) SumSquaredDiff(a, b *device.Buffer) float64 {
	checkSame("SumSquaredDiff", a, b)
	out := 0.0
	c.exec(c.op(sim.OpReduce, 0, 0, 0, a.Rows*a.Cols, 3, 16),
		[]*device.Buffer{a, b}, nil,
		func() { out = kernels.SumSquaredDiff(c.Dev.Pool, c.Level, a.Mat, b.Mat) })
	return out
}

// SumSquares returns Σ a², the squared Frobenius norm used by the L2
// regularization term of Eq. 4. Returns 0 on a model-only device.
func (c *Context) SumSquares(a *device.Buffer) float64 {
	out := 0.0
	c.exec(c.op(sim.OpReduce, 0, 0, 0, a.Rows*a.Cols, 2, 8),
		[]*device.Buffer{a}, nil,
		func() { out = a.Mat.SumSquares() })
	return out
}

// AddKLSparsityDelta folds the sparsity penalty gradient into the hidden
// delta: delta[i,j] = (delta[i,j] + coeff[j]) · dY[i,j], with coeff[j] =
// β·(−ρ/ρ̂_j + (1−ρ)/(1−ρ̂_j)) computed on the host (h values, negligible).
func (c *Context) AddKLSparsityDelta(delta *device.Buffer, coeff tensor.Vector, dY *device.Buffer) {
	if len(coeff) != delta.Cols {
		panic(fmt.Sprintf("blas: AddKLSparsityDelta coeff length %d for delta %dx%d", len(coeff), delta.Rows, delta.Cols))
	}
	checkSame("AddKLSparsityDelta", delta, dY)
	c.exec(c.op(sim.OpElem, 0, 0, 0, delta.Rows*delta.Cols, 4, 32),
		[]*device.Buffer{delta, dY}, []*device.Buffer{delta},
		func() { kernels.AddKLSparsityDelta(c.Dev.Pool, c.Level, delta.Mat, coeff, dY.Mat) })
}

// MeanActivations returns the per-hidden-unit mean activation ρ̂ of the
// 1×Cols reduction buffer sums divided by rows; a host-side convenience on
// top of ColSums. Returns zeros on a model-only device.
func (c *Context) MeanActivations(h *device.Buffer, scratch *device.Buffer) tensor.Vector {
	c.ColSums(h, scratch)
	out := tensor.NewVector(h.Cols)
	if c.Dev.Numeric {
		inv := 1 / float64(h.Rows)
		for j, v := range scratch.Mat.RowView(0) {
			out[j] = v * inv
		}
	}
	return out
}

// KLDivergence returns Σ_j KL(ρ‖ρ̂_j) per Eq. 6, computed on the host from
// the length-h mean-activation vector. ρ̂ values are clamped away from
// {0,1} for numerical safety.
func KLDivergence(rho float64, rhoHat tensor.Vector) float64 {
	const eps = 1e-12
	s := 0.0
	for _, r := range rhoHat {
		r = math.Min(math.Max(r, eps), 1-eps)
		s += rho*math.Log(rho/r) + (1-rho)*math.Log((1-rho)/(1-r))
	}
	return s
}

func checkSame(op string, a, b *device.Buffer) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("blas: %s shape mismatch: %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// AddGaussianNoise computes dst = mean + sigma·N(0,1) — the visible-unit
// sampling of a Gaussian–Bernoulli RBM. Like SampleBernoulli, the context
// RNG advances exactly once per launch in both execution modes.
func (c *Context) AddGaussianNoise(dst, mean *device.Buffer, sigma float64) {
	checkSame("AddGaussianNoise", dst, mean)
	seedDraw := c.RNG
	c.exec(c.op(sim.OpSample, 0, 0, 0, mean.Rows*mean.Cols, 40, 16),
		[]*device.Buffer{mean}, []*device.Buffer{dst},
		func() { kernels.AddGaussianNoise(c.Dev.Pool, c.Level, dst.Mat, mean.Mat, sigma, seedDraw) })
	if !c.Dev.Numeric {
		_ = seedDraw.Uint64()
	}
}

// Copy computes dst = src elementwise (a device-side memcpy).
func (c *Context) Copy(dst, src *device.Buffer) {
	checkSame("Copy", dst, src)
	c.exec(c.op(sim.OpElem, 0, 0, 0, src.Rows*src.Cols, 0, 16),
		[]*device.Buffer{src}, []*device.Buffer{dst},
		func() { dst.Mat.CopyFrom(src.Mat) })
}
