package cluster

import (
	"math"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func smallCfg(nodes, syncEvery int) Config {
	return Config{
		Model:       autoencoder.Config{Visible: 12, Hidden: 6, Lambda: 1e-5},
		Nodes:       nodes,
		GlobalBatch: 12,
		SyncEvery:   syncEvery,
		Net:         GigabitEthernet(),
	}
}

func lowRank(r *rng.RNG, n, dim int) *tensor.Matrix {
	u := tensor.NewMatrix(n, 2).Randomize(r, -2, 2)
	v := tensor.NewMatrix(2, dim).Randomize(r, -2, 2)
	x := tensor.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			s := u.At(i, 0)*v.At(0, j) + u.At(i, 1)*v.At(1, j)
			x.Set(i, j, 1/(1+math.Exp(-s)))
		}
	}
	return x
}

// TestSynchronousClusterMatchesSingleNode: with SyncEvery=1, parameter
// averaging after every step makes an N-node cluster follow the same
// trajectory as one node training on the full batch — sync SGD equivalence.
func TestSynchronousClusterMatchesSingleNode(t *testing.T) {
	cfg := smallCfg(3, 1)
	cl, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Free()
	solo, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, smallCfg(1, 1), true, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Free()
	x := lowRank(rng.New(8), 12, 12)
	for step := 0; step < 3; step++ {
		cl.Step(x, 0.4)
		solo.Step(x, 0.4)
		a, b := cl.Download(), solo.Download()
		if d := tensor.MaxAbsDiff(a.W1, b.W1); d > 1e-12 {
			t.Fatalf("step %d: cluster diverged from single node by %g", step, d)
		}
	}
}

func TestClusterLearns(t *testing.T) {
	cl, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, smallCfg(4, 2), true, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Free()
	x := lowRank(rng.New(10), 12, 12)
	first := cl.Step(x, 1.0)
	var last float64
	for i := 0; i < 300; i++ {
		last = cl.Step(x, 1.0)
	}
	if !(last < 0.5*first) {
		t.Fatalf("cluster did not learn: %g → %g", first, last)
	}
	if cl.Syncs() == 0 || cl.Steps() != 301 {
		t.Fatalf("bookkeeping: %d steps, %d syncs", cl.Steps(), cl.Syncs())
	}
}

// TestCommunicationBoundsTheCluster: on a fat model over 1 GbE, adding
// nodes with per-step averaging makes things *slower* — the communication
// wall the paper's Phi pitch rests on. Relaxing the sync interval recovers
// some scaling.
func TestCommunicationBoundsTheCluster(t *testing.T) {
	run := func(nodes, syncEvery int) float64 {
		cfg := Config{
			Model:       autoencoder.Config{Visible: 1024, Hidden: 4096},
			Nodes:       nodes,
			GlobalBatch: 1000 - 1000%nodes,
			SyncEvery:   syncEvery,
			Net:         GigabitEthernet(),
		}
		cfg.GlobalBatch = nodes * (1000 / nodes)
		cl, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Free()
		for i := 0; i < 10; i++ {
			cl.Step(nil, 0.1)
		}
		return cl.SimSeconds()
	}
	one := run(1, 1)
	fourSync := run(4, 1)
	fourLocal := run(4, 10)
	if !(fourSync > one) {
		t.Errorf("per-step averaging over 1 GbE should not beat one node on a fat model: %g vs %g", fourSync, one)
	}
	if !(fourLocal < fourSync) {
		t.Errorf("local SGD (sync every 10) should beat per-step sync: %g vs %g", fourLocal, fourSync)
	}
}

func TestAllReduceModel(t *testing.T) {
	ic := GigabitEthernet()
	if ic.AllReduceTime(1<<20, 1) != 0 {
		t.Fatal("single node must not communicate")
	}
	t2 := ic.AllReduceTime(1<<20, 2)
	t8 := ic.AllReduceTime(1<<20, 8)
	if !(t8 > t2) {
		t.Fatal("more hops must cost more latency")
	}
	// Bandwidth term approaches 2×payload/bw as N grows.
	asym := 2 * float64(1<<20) / ic.Bandwidth
	if math.Abs(ic.AllReduceTime(1<<20, 64)-asym) > 0.5*asym {
		t.Fatal("ring bandwidth term off")
	}
	if TenGigabitEthernet().AllReduceTime(1<<20, 4) >= ic.AllReduceTime(1<<20, 4) {
		t.Fatal("10 GbE should be faster")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, smallCfg(0, 1), false, 1); err == nil {
		t.Error("zero nodes must fail")
	}
	bad := smallCfg(5, 1) // 12 % 5 != 0
	if _, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, bad, false, 1); err == nil {
		t.Error("indivisible batch must fail")
	}
	bad = smallCfg(2, 1)
	bad.Model.Visible = 0
	if _, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, bad, false, 1); err == nil {
		t.Error("bad model must fail")
	}
}

func TestReplicasShareContextsButNotDevices(t *testing.T) {
	cl, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, smallCfg(2, 1), false, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Free()
	if cl.ctxOf(0).Dev == cl.ctxOf(1).Dev {
		t.Fatal("nodes share a device")
	}
}
