package cluster

import (
	"bytes"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/feed"
	"phideep/internal/tensor"
)

// nodeStatus is one member's liveness.
type nodeStatus int

const (
	// statusLive: training (or, with resync pending, waiting at the next
	// barrier for fresh parameters).
	statusLive nodeStatus = iota
	// statusCrashed: down, with a rejoin scheduled.
	statusCrashed
	// statusLeft: permanently lost; never rejoins.
	statusLeft
)

// node is one cluster member: a model replica on its own simulated device,
// its deterministic fault stream, and its liveness bookkeeping.
type node struct {
	id     int
	m      *autoencoder.Model
	stream *device.FaultStream
	// feedc is the node's consumer of the shared feed (nil without one);
	// stage is its host staging matrix for leased chunks (numeric only).
	feedc *feed.Consumer
	stage *tensor.Matrix

	status nodeStatus
	// inRing marks the node a member of the all-reduce ring. A crashed
	// node stays in the ring — silently slowing the next barrier — until
	// the failure detector excises it.
	inRing bool
	// resync marks a rejoined node waiting at the next barrier for fresh
	// parameters before it re-enters training.
	resync bool

	downSince   float64 // simulated time of the crash
	rejoinAt    int     // global step at which a crashed node rejoins
	stallLeft   int     // remaining straggler steps
	stallFactor float64
	lastBeat    float64 // heartbeat: simulated end of the last completed step
	stepEnd     float64 // this round's step end (scratch; live nodes only)
	rawDur      float64 // un-stalled duration of the last step

	r NodeReport // per-node accounting
}

// dev returns the node's simulated device.
func (n *node) dev() *device.Device { return n.m.Ctx.Dev }

// partition splits the membership for a sync round: participants trained
// this round and contribute gradients; receivers are rejoined nodes waiting
// for a parameter resync.
func (c *Cluster) partition() (participants, receivers []*node) {
	for _, n := range c.nodes {
		if n.status != statusLive {
			continue
		}
		if n.resync {
			receivers = append(receivers, n)
		} else {
			participants = append(participants, n)
		}
	}
	return participants, receivers
}

// detectFailures runs the heartbeat failure detector at a sync barrier.
// A ring member that has been silent (no heartbeat) for timeout simulated
// seconds is declared dead and excised from the ring; the survivors cannot
// complete the round before the silence has lasted that long, so the
// detection wait is returned as a lower bound on the barrier time.
func (c *Cluster) detectFailures(timeout float64) (wait float64) {
	for _, n := range c.nodes {
		if !n.inRing || n.status == statusLive {
			continue
		}
		if at := n.downSince + timeout; at > wait {
			wait = at
		}
		n.inRing = false
		if n.status == statusLeft && n.feedc != nil {
			// A permanently lost node's frozen cursor pins the feed's low
			// watermark, accumulating backpressure stalls until the
			// detector excises it; closing its consumer releases the feed.
			n.feedc.Close()
		}
		n.r.Detections++
		c.rep.Detections++
		if metricsOn() {
			mDetections.Inc()
		}
	}
	return wait
}

// rejoin brings a crashed node back: its clock catches up to the cluster,
// it restores the lead replica's last PHCK checkpoint (when one exists —
// a crash before the first sync relies entirely on the barrier resync),
// and it waits for fresh parameters at the next barrier before training.
func (c *Cluster) rejoin(n *node) {
	n.status = statusLive
	n.inRing = true
	n.resync = true
	n.stallLeft = 0
	n.r.Rejoins++
	c.rep.Rejoins++
	if metricsOn() {
		mRejoins.Inc()
	}
	if down := c.syncedAt - n.dev().Now(); down > 0 {
		// The machine was dark from the crash to now; the gap is charged
		// to its compute engine as injected idle time.
		n.dev().StallCompute(down)
		n.r.DownSeconds += down
	}
	if c.ckptBlob == nil {
		return
	}
	ck, err := core.DecodeCheckpoint(c.ckptBlob)
	if err != nil {
		// The handoff blob is produced in-process, so this cannot happen
		// short of memory corruption; the barrier resync repairs the
		// replica regardless, so do not kill the run over it.
		return
	}
	if err := n.m.RestoreState(bytes.NewReader(ck.Model)); err != nil {
		return
	}
	n.r.Restores++
}

// liveCount returns the number of live members (resync-pending included).
func (c *Cluster) liveCount() int {
	live := 0
	for _, n := range c.nodes {
		if n.status == statusLive {
			live++
		}
	}
	return live
}
