package cluster

import (
	"fmt"

	"phideep/internal/device"
)

// FaultKind classifies one injected node fault.
type FaultKind int

const (
	// FaultCrash removes the node from the cluster: it stops computing and
	// heartbeating, is excised from the ring by the failure detector, and
	// rejoins (unless the crash is permanent) via checkpoint resync.
	FaultCrash FaultKind = iota
	// FaultStall makes the node a straggler: its steps take StallFactor×
	// their normal time for StallSteps steps. Stalls change only the
	// simulated clock, never the numerics.
	FaultStall
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// NodeFault is one scripted fault event: at the top of global step Step
// (0-based), node Node suffers the given fault. Scripted events fire in
// addition to the random stream; tests that need "node k crashes at step s"
// exactly script the event and leave Rate at zero.
type NodeFault struct {
	Step int
	Node int
	Kind FaultKind
	// Permanent marks a crash the node never recovers from (a lost
	// machine, not a reboot).
	Permanent bool
	// RejoinAfter overrides the plan's rejoin delay for this crash
	// (0 = use the plan's).
	RejoinAfter int
	// StallFactor and StallSteps override the plan for this stall
	// (0 = use the plan's).
	StallFactor float64
	StallSteps  int
}

// FaultPlan parameterizes the cluster's per-node fault injection. Every
// node draws from its own seeded stream (built on the internal/device
// fault plumbing), so a given (plan, step sequence) pair always produces
// the same fault pattern, and one node's failures never perturb another
// node's stream — fault-injected cluster runs are as reproducible as clean
// ones.
type FaultPlan struct {
	// Rate is the per-node per-step fault probability in [0, 1).
	Rate float64
	// CrashFrac is the fraction of faults that are crashes; the remainder
	// are transient stalls. In [0, 1].
	CrashFrac float64
	// PermanentFrac is the fraction of crashes that are permanent node
	// losses (the node never rejoins). In [0, 1].
	PermanentFrac float64
	// RejoinAfter is the number of global steps a crashed node stays down
	// before rejoining. Zero defaults to 8.
	RejoinAfter int
	// StallFactor multiplies a straggler's step time. Zero defaults to 4;
	// values below 1 are rejected (a stall cannot speed a node up).
	StallFactor float64
	// StallSteps is how many consecutive steps a stall lasts. Zero
	// defaults to 1.
	StallSteps int
	// Seed seeds the per-node fault streams.
	Seed uint64
	// Script injects deterministic events on top of (or, with Rate zero,
	// instead of) the random stream.
	Script []NodeFault
}

// withDefaults validates the plan against nodes cluster members and fills
// the documented defaults. The probability ranges are enforced by the same
// validator as the device's PCIe fault model, so phisim's cluster flags and
// phitrain's transfer-fault flags reject identical mistakes identically.
func (p FaultPlan) withDefaults(nodes int) (FaultPlan, error) {
	if err := (device.FaultConfig{Rate: p.Rate, PermanentFrac: p.CrashFrac}).Validate(); err != nil {
		return p, fmt.Errorf("cluster: fault plan: %w", err)
	}
	if p.PermanentFrac < 0 || p.PermanentFrac > 1 {
		return p, fmt.Errorf("cluster: fault plan: permanent fraction %g outside [0, 1]", p.PermanentFrac)
	}
	if p.RejoinAfter < 0 || p.StallSteps < 0 {
		return p, fmt.Errorf("cluster: fault plan: negative rejoin/stall duration")
	}
	if p.StallFactor != 0 && p.StallFactor < 1 {
		return p, fmt.Errorf("cluster: fault plan: stall factor %g below 1", p.StallFactor)
	}
	if p.RejoinAfter == 0 {
		p.RejoinAfter = 8
	}
	if p.StallFactor == 0 {
		p.StallFactor = 4
	}
	if p.StallSteps == 0 {
		p.StallSteps = 1
	}
	for _, ev := range p.Script {
		if ev.Node < 0 || ev.Node >= nodes {
			return p, fmt.Errorf("cluster: fault plan: scripted event targets node %d of %d", ev.Node, nodes)
		}
		if ev.Step < 0 {
			return p, fmt.Errorf("cluster: fault plan: scripted event at negative step %d", ev.Step)
		}
		if ev.Kind != FaultCrash && ev.Kind != FaultStall {
			return p, fmt.Errorf("cluster: fault plan: unknown fault kind %d", int(ev.Kind))
		}
		if ev.RejoinAfter < 0 || ev.StallSteps < 0 || (ev.StallFactor != 0 && ev.StallFactor < 1) {
			return p, fmt.Errorf("cluster: fault plan: bad scripted override on node %d step %d", ev.Node, ev.Step)
		}
	}
	return p, nil
}

// stream builds node id's deterministic fault stream. The device seam's
// Draw maps onto the cluster's event classes: a "permanent" draw (drawn
// with probability CrashFrac) is a crash, the rest are stalls.
func (p FaultPlan) stream(id int) *device.FaultStream {
	s, err := device.NewFaultStream(device.FaultConfig{
		Rate:          p.Rate,
		PermanentFrac: p.CrashFrac,
		Seed:          p.Seed ^ uint64(id+1)*0x9e3779b97f4a7c15,
	})
	if err != nil {
		// The plan was validated by withDefaults before any stream is built.
		panic(err)
	}
	return s
}

// scriptIndex groups the scripted events by step for O(1) per-step lookup.
func (p FaultPlan) scriptIndex() map[int][]NodeFault {
	if len(p.Script) == 0 {
		return nil
	}
	idx := make(map[int][]NodeFault)
	for _, ev := range p.Script {
		idx[ev.Step] = append(idx[ev.Step], ev)
	}
	return idx
}

// injectFaults fires this step's fault events for a live node: scripted
// events first, then at most one draw from the node's random stream.
func (c *Cluster) injectFaults(n *node, step int) {
	for _, ev := range c.scripted[step] {
		if ev.Node != n.id {
			continue
		}
		c.applyFault(n, ev, step)
		if n.status != statusLive {
			return
		}
	}
	fault, isCrash := n.stream.Draw()
	if !fault {
		return
	}
	if isCrash {
		c.applyFault(n, NodeFault{Kind: FaultCrash, Permanent: n.stream.Float64() < c.plan.PermanentFrac}, step)
	} else {
		c.applyFault(n, NodeFault{Kind: FaultStall}, step)
	}
}

// applyFault transitions the node per one fault event at the given step.
func (c *Cluster) applyFault(n *node, ev NodeFault, step int) {
	switch ev.Kind {
	case FaultCrash:
		now := n.dev().Now()
		if c.syncedAt > now {
			now = c.syncedAt
		}
		n.downSince = now
		n.stallLeft = 0
		n.resync = false
		n.r.Crashes++
		c.rep.Crashes++
		if metricsOn() {
			mCrashes.Inc()
		}
		if ev.Permanent {
			n.status = statusLeft
			c.rep.PermanentLosses++
			return
		}
		n.status = statusCrashed
		after := ev.RejoinAfter
		if after == 0 {
			after = c.plan.RejoinAfter
		}
		n.rejoinAt = step + after
	case FaultStall:
		f := ev.StallFactor
		if f == 0 {
			f = c.plan.StallFactor
		}
		s := ev.StallSteps
		if s == 0 {
			s = c.plan.StallSteps
		}
		n.stallFactor = f
		n.stallLeft = s
		n.r.Stalls++
		c.rep.Stalls++
		if metricsOn() {
			mStalls.Inc()
		}
	}
}
