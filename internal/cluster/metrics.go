package cluster

import "phideep/internal/metrics"

// Cluster-level observability handles, aggregated across runs in one
// process and recorded only while metrics.Enabled() holds (one atomic load
// when off), mirroring the trainer's and device's counters.
var (
	mSyncs       = metrics.Default().Counter("cluster.syncs")
	mCrashes     = metrics.Default().Counter("cluster.crashes")
	mStalls      = metrics.Default().Counter("cluster.stalls")
	mDrops       = metrics.Default().Counter("cluster.drops")
	mRejoins     = metrics.Default().Counter("cluster.rejoins")
	mResyncs     = metrics.Default().Counter("cluster.resyncs")
	mDetections  = metrics.Default().Counter("cluster.detections")
	mBackupRuns  = metrics.Default().Counter("cluster.backup_runs")
	mCheckpoints = metrics.Default().Counter("cluster.checkpoints")
)

// metricsOn mirrors metrics.Enabled for brevity at the call sites.
func metricsOn() bool { return metrics.Enabled() }
