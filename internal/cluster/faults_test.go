package cluster

import (
	"math"
	"strings"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// faultyCfg is smallCfg with an armed fault plan.
func faultyCfg(nodes, syncEvery int, plan *FaultPlan) Config {
	cfg := smallCfg(nodes, syncEvery)
	cfg.Faults = plan
	return cfg
}

// runFaulty trains a fresh cluster for steps steps and returns it (caller
// frees).
func runFaulty(t *testing.T, cfg Config, steps int, seed uint64) *Cluster {
	t.Helper()
	cl, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, true, seed)
	if err != nil {
		t.Fatal(err)
	}
	x := lowRank(rng.New(8), cfg.GlobalBatch, cfg.Model.Visible)
	for i := 0; i < steps; i++ {
		cl.Step(x, 0.5)
	}
	return cl
}

// paramsEqual reports bit-identity of two parameter sets.
func paramsEqual(a, b *autoencoder.Params) bool {
	if tensor.MaxAbsDiff(a.W1, b.W1) != 0 || tensor.MaxAbsDiff(a.W2, b.W2) != 0 {
		return false
	}
	for i := range a.B1 {
		if a.B1[i] != b.B1[i] {
			return false
		}
	}
	for i := range a.B2 {
		if a.B2[i] != b.B2[i] {
			return false
		}
	}
	return true
}

// TestFaultedRunIsDeterministic: a fault-injected run with a fixed seed is
// bit-identical across repeated invocations — same parameters, same
// degradation ledger, same simulated makespan.
func TestFaultedRunIsDeterministic(t *testing.T) {
	plan := &FaultPlan{Rate: 0.15, CrashFrac: 0.4, PermanentFrac: 0.2, RejoinAfter: 3, Seed: 11}
	run := func() (*autoencoder.Params, Report) {
		cl := runFaulty(t, faultyCfg(4, 2, plan), 40, 7)
		defer cl.Free()
		return cl.Download(), cl.Report()
	}
	p1, r1 := run()
	p2, r2 := run()
	if !paramsEqual(p1, p2) {
		t.Fatal("fault-injected runs with the same seed diverged")
	}
	if r1.Crashes != r2.Crashes || r1.Stalls != r2.Stalls || r1.Rejoins != r2.Rejoins ||
		r1.Resyncs != r2.Resyncs || r1.Detections != r2.Detections || r1.SimSeconds != r2.SimSeconds {
		t.Fatalf("degradation ledgers diverged: %+v vs %+v", r1, r2)
	}
	if r1.Crashes == 0 && r1.Stalls == 0 {
		t.Fatal("fault plan at rate 0.15 over 160 node-steps injected nothing")
	}
}

// TestStragglerChangesOnlyTheClock: a transient-straggler run (WaitAll)
// matches the clean run's final parameters bit-for-bit while reporting
// strictly greater simulated time — slowdowns are charged to the clock,
// never to the numerics.
func TestStragglerChangesOnlyTheClock(t *testing.T) {
	clean := runFaulty(t, smallCfg(3, 1), 12, 7)
	defer clean.Free()
	plan := &FaultPlan{Script: []NodeFault{
		{Step: 2, Node: 1, Kind: FaultStall, StallFactor: 6, StallSteps: 3},
		{Step: 8, Node: 0, Kind: FaultStall, StallFactor: 3, StallSteps: 1},
	}}
	slow := runFaulty(t, faultyCfg(3, 1, plan), 12, 7)
	defer slow.Free()

	if !paramsEqual(clean.Download(), slow.Download()) {
		t.Fatal("straggler stalls changed the numerics")
	}
	if !(slow.SimSeconds() > clean.SimSeconds()) {
		t.Fatalf("straggler run not slower: %g vs clean %g", slow.SimSeconds(), clean.SimSeconds())
	}
	rep := slow.Report()
	if rep.Stalls != 2 || rep.PerNode[1].Stalls != 1 || rep.PerNode[0].Stalls != 1 {
		t.Fatalf("stall accounting off: %+v", rep)
	}
	if rep.PerNode[1].StallSeconds <= 0 {
		t.Fatal("stalled node reports no stall seconds")
	}
}

// TestClusterRecovery: node 2 crashes at step 6 and rejoins 6 steps later
// via the lead replica's checkpoint; the run converges into the clean
// run's loss band, and the Report accounts the crash, the detection, the
// rejoin-restore and the resync exactly as injected. (ci.sh re-runs this
// test with -count=2 as a determinism spot-check.)
func TestClusterRecovery(t *testing.T) {
	const steps = 120
	cfg := smallCfg(4, 2)
	clean, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Free()
	plan := &FaultPlan{Script: []NodeFault{{Step: 6, Node: 2, Kind: FaultCrash, RejoinAfter: 6}}}
	faulty, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, faultyCfg(4, 2, plan), true, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Free()

	x := lowRank(rng.New(10), cfg.GlobalBatch, cfg.Model.Visible)
	var cleanFirst, cleanLast, faultyLast float64
	for i := 0; i < steps; i++ {
		l := clean.Step(x, 1.0)
		if i == 0 {
			cleanFirst = l
		}
		cleanLast = l
		faultyLast = faulty.Step(x, 1.0)
	}
	if !(cleanLast < 0.5*cleanFirst) {
		t.Fatalf("clean cluster did not learn: %g → %g", cleanFirst, cleanLast)
	}
	// The crash-and-rejoin run lands in the clean run's loss band.
	if math.Abs(faultyLast-cleanLast) > 0.25*cleanLast {
		t.Fatalf("recovered run outside the clean loss band: %g vs %g", faultyLast, cleanLast)
	}

	rep := faulty.Report()
	// Cross-check the ledger against the injected schedule: one crash on
	// node 2, detected at the next barrier, one checkpoint restore, one
	// rejoin, one resync; nothing else.
	if rep.Crashes != 1 || rep.PerNode[2].Crashes != 1 {
		t.Fatalf("crashes: %+v", rep)
	}
	if rep.Detections != 1 || rep.PerNode[2].Detections != 1 {
		t.Fatalf("detections: %+v", rep)
	}
	if rep.Rejoins != 1 || rep.PerNode[2].Rejoins != 1 {
		t.Fatalf("rejoins: %+v", rep)
	}
	if rep.PerNode[2].Restores != 1 {
		t.Fatalf("checkpoint restores: %+v", rep.PerNode[2])
	}
	if rep.Resyncs != 1 || rep.PerNode[2].Resyncs != 1 {
		t.Fatalf("resyncs: %+v", rep)
	}
	if rep.Stalls != 0 || rep.Drops != 0 || rep.PermanentLosses != 0 {
		t.Fatalf("phantom events in ledger: %+v", rep)
	}
	if rep.Checkpoints == 0 {
		t.Fatal("lead replica never checkpointed")
	}
	if rep.LiveNodes != 4 {
		t.Fatalf("membership did not recover: %d live", rep.LiveNodes)
	}
	// The crashed node missed exactly its downtime: 6 crash-to-rejoin
	// steps plus the SyncEvery=2 resync round it sat out.
	if want := steps - 8; rep.PerNode[2].Steps != want {
		t.Fatalf("node 2 trained %d steps, want %d", rep.PerNode[2].Steps, want)
	}
	if rep.PerNode[2].DownSeconds <= 0 {
		t.Fatal("downtime not charged to the rejoined node")
	}
}

// TestPermanentLossDegradesMembership: a permanent crash shrinks the ring
// for good; the detector charges the heartbeat timeout once, the report
// shows the lost member, and training continues on the survivors.
func TestPermanentLossDegradesMembership(t *testing.T) {
	plan := &FaultPlan{Script: []NodeFault{{Step: 4, Node: 0, Kind: FaultCrash, Permanent: true}}}
	cfg := faultyCfg(3, 1, plan)
	cfg.HeartbeatTimeout = 2.0 // generous, so the detection wait is visible
	cl := runFaulty(t, cfg, 20, 5)
	defer cl.Free()

	rep := cl.Report()
	if rep.Crashes != 1 || rep.PermanentLosses != 1 || rep.Detections != 1 {
		t.Fatalf("ledger: %+v", rep)
	}
	if rep.Rejoins != 0 || rep.Resyncs != 0 {
		t.Fatalf("a permanent loss must not rejoin: %+v", rep)
	}
	if rep.LiveNodes != 2 {
		t.Fatalf("membership: %d live, want 2", rep.LiveNodes)
	}
	if !rep.PerNode[1].Live || rep.PerNode[0].Live {
		t.Fatalf("per-node liveness wrong: %+v", rep.PerNode)
	}
	// The survivors waited out the heartbeat timeout before excising the
	// dead member, so the makespan clears crash time + timeout.
	if rep.SimSeconds < 2.0 {
		t.Fatalf("detection wait not charged: makespan %g", rep.SimSeconds)
	}
	// Training on the shrunken ring still learns.
	clean := runFaulty(t, smallCfg(3, 1), 20, 5)
	defer clean.Free()
	if cl.SimSeconds() <= clean.SimSeconds() {
		t.Fatal("degraded run should not be faster than the clean run")
	}
}

// TestTimeoutDropPolicy: a hard straggler under TimeoutDrop is dropped
// from the round instead of bounding it; the round completes earlier than
// under WaitAll and the drop is accounted.
func TestTimeoutDropPolicy(t *testing.T) {
	plan := &FaultPlan{Script: []NodeFault{{Step: 3, Node: 1, Kind: FaultStall, StallFactor: 20, StallSteps: 1}}}
	wait := runFaulty(t, faultyCfg(3, 1, plan), 8, 7)
	defer wait.Free()

	cfgDrop := faultyCfg(3, 1, plan)
	cfgDrop.Policy = TimeoutDrop
	drop := runFaulty(t, cfgDrop, 8, 7)
	defer drop.Free()

	if drop.Report().Drops == 0 {
		t.Fatalf("no drops recorded: %+v", drop.Report())
	}
	if !(drop.SimSeconds() < wait.SimSeconds()) {
		t.Fatalf("TimeoutDrop not faster than WaitAll: %g vs %g", drop.SimSeconds(), wait.SimSeconds())
	}
}

// TestBackupNodePolicy: the hot spare races the straggler, capping the
// round while leaving the numerics bit-identical to WaitAll (the spare's
// gradient is the same bits).
func TestBackupNodePolicy(t *testing.T) {
	plan := &FaultPlan{Script: []NodeFault{{Step: 3, Node: 1, Kind: FaultStall, StallFactor: 20, StallSteps: 2}}}
	wait := runFaulty(t, faultyCfg(3, 1, plan), 8, 7)
	defer wait.Free()

	cfgBk := faultyCfg(3, 1, plan)
	cfgBk.Policy = BackupNode
	backup := runFaulty(t, cfgBk, 8, 7)
	defer backup.Free()

	if backup.Report().BackupRuns == 0 {
		t.Fatalf("no backup activations recorded: %+v", backup.Report())
	}
	if !paramsEqual(wait.Download(), backup.Download()) {
		t.Fatal("backup policy changed the numerics")
	}
	if !(backup.SimSeconds() < wait.SimSeconds()) {
		t.Fatalf("BackupNode not faster than WaitAll: %g vs %g", backup.SimSeconds(), wait.SimSeconds())
	}
}

// TestDegradedAllReduceShrinks: on a model-only fat model, losing a node
// permanently makes later rounds cheaper than the full ring (the ring time
// is recomputed for the shrunken membership).
func TestDegradedAllReduceShrinks(t *testing.T) {
	base := Config{
		Model:       autoencoder.Config{Visible: 1024, Hidden: 4096},
		Nodes:       8,
		GlobalBatch: 800,
		SyncEvery:   1,
		Net:         GigabitEthernet(),
	}
	run := func(cfg Config) float64 {
		cl, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Free()
		// Time only the steady state after the loss is detected.
		for i := 0; i < 12; i++ {
			cl.Step(nil, 0.1)
		}
		return cl.SimSeconds()
	}
	full := run(base)
	degraded := base
	degraded.Faults = &FaultPlan{Script: []NodeFault{{Step: 0, Node: 3, Kind: FaultCrash, Permanent: true}}}
	degraded.HeartbeatTimeout = 1e-6 // detect instantly: isolate the ring-size effect
	lost := run(degraded)
	if !(lost < full) {
		t.Fatalf("7-node ring should beat 8-node ring on a fat model: %g vs %g", lost, full)
	}
}

// TestAverageParamsOrderIndependent: the all-reduce average is bit-
// identical regardless of the order the participant list is assembled in.
func TestAverageParamsOrderIndependent(t *testing.T) {
	cl := runFaulty(t, smallCfg(3, 1000), 3, 7) // never syncs: replicas diverge
	defer cl.Free()
	fwd := averageParams([]*node{cl.nodes[0], cl.nodes[1], cl.nodes[2]})
	rev := averageParams([]*node{cl.nodes[2], cl.nodes[0], cl.nodes[1]})
	if !paramsEqual(fwd, rev) {
		t.Fatal("averageParams depends on node iteration order")
	}
}

// TestSingleNodeNeverSyncs: a one-node cluster has nobody to talk to.
func TestSingleNodeNeverSyncs(t *testing.T) {
	cl := runFaulty(t, smallCfg(1, 1), 5, 3)
	defer cl.Free()
	if cl.Syncs() != 0 {
		t.Fatalf("single node synced %d times", cl.Syncs())
	}
	if cl.SimSeconds() <= 0 {
		t.Fatal("single node charged no time")
	}
}

// TestSyncEveryBeyondRun: a sync interval longer than the whole run means
// zero averaging rounds and replicas that have drifted apart.
func TestSyncEveryBeyondRun(t *testing.T) {
	cl := runFaulty(t, smallCfg(2, 100), 5, 3)
	defer cl.Free()
	if cl.Syncs() != 0 {
		t.Fatalf("synced %d times with SyncEvery beyond the run", cl.Syncs())
	}
	a := cl.nodes[0].m.Download()
	b := cl.nodes[1].m.Download()
	if paramsEqual(a, b) {
		t.Fatal("unsynced replicas training on different shards should drift")
	}
}

// TestFreeIdempotent: Free twice (and Free after a failed New) must not
// double-free device buffers.
func TestFreeIdempotent(t *testing.T) {
	cl, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, smallCfg(2, 1), false, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl.Free()
	cl.Free() // must be a no-op, not a panic
}

// TestFaultPlanValidation: malformed plans and configs are rejected by New
// with clear errors.
func TestFaultPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"rate out of range", func(c *Config) { c.Faults = &FaultPlan{Rate: 1.5} }, "fault rate"},
		{"negative rate", func(c *Config) { c.Faults = &FaultPlan{Rate: -0.1} }, "fault rate"},
		{"crash frac", func(c *Config) { c.Faults = &FaultPlan{Rate: 0.1, CrashFrac: 2} }, "permanent fraction"},
		{"permanent frac", func(c *Config) { c.Faults = &FaultPlan{Rate: 0.1, PermanentFrac: -1} }, "permanent fraction"},
		{"stall factor", func(c *Config) { c.Faults = &FaultPlan{Rate: 0.1, StallFactor: 0.5} }, "stall factor"},
		{"negative rejoin", func(c *Config) { c.Faults = &FaultPlan{Rate: 0.1, RejoinAfter: -1} }, "rejoin"},
		{"script node", func(c *Config) { c.Faults = &FaultPlan{Script: []NodeFault{{Node: 9}}} }, "targets node"},
		{"script step", func(c *Config) { c.Faults = &FaultPlan{Script: []NodeFault{{Node: 0, Step: -2}}} }, "negative step"},
		{"script kind", func(c *Config) { c.Faults = &FaultPlan{Script: []NodeFault{{Node: 0, Kind: FaultKind(7)}}} }, "fault kind"},
		{"policy", func(c *Config) { c.Policy = Policy(9) }, "policy"},
		{"timeout", func(c *Config) { c.DropTimeout = -1 }, "timeout"},
	}
	for _, cse := range cases {
		cfg := smallCfg(3, 1)
		cse.mut(&cfg)
		_, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, false, 1)
		if err == nil || !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: err = %v, want contains %q", cse.name, err, cse.want)
		}
	}
}

// TestPolicyRoundTrip: flag spellings parse back to the policies.
func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{WaitAll, TimeoutDrop, BackupNode} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy must fail")
	}
}
