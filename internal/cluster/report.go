package cluster

import "phideep/internal/feed"

// Report is the degradation ledger of a cluster run: how often the ring
// synchronized, what faults were injected, how the membership reacted, and
// where the simulated time went, per node. phisim marshals it as the JSON
// run report; tests cross-check its counters against the injected fault
// schedule.
type Report struct {
	Nodes  int    `json:"nodes"`
	Policy string `json:"policy"`
	Steps  int    `json:"steps"`
	Syncs  int    `json:"syncs"`

	// Fault-injection outcomes.
	Crashes         int `json:"crashes"`
	PermanentLosses int `json:"permanent_losses"`
	Stalls          int `json:"stalls"`
	Rejoins         int `json:"rejoins"`
	Resyncs         int `json:"resyncs"`
	Detections      int `json:"detections"`
	Drops           int `json:"drops"`
	BackupRuns      int `json:"backup_runs"`
	Checkpoints     int `json:"checkpoints"`

	// LiveNodes is the final membership; SimSeconds the cluster makespan.
	LiveNodes  int     `json:"live_nodes"`
	SimSeconds float64 `json:"sim_seconds"`

	// Feed is the shared dataset server's protocol counters when the run
	// streamed over one (leases, commits, backpressure stalls, seeks).
	Feed *feed.Stats `json:"feed,omitempty"`

	PerNode []NodeReport `json:"per_node"`
}

// NodeReport is one member's share of the ledger.
type NodeReport struct {
	ID    int  `json:"id"`
	Live  bool `json:"live"`
	Steps int  `json:"steps"`

	Crashes    int `json:"crashes"`
	Stalls     int `json:"stalls"`
	Drops      int `json:"drops"`
	Rejoins    int `json:"rejoins"`
	Restores   int `json:"restores"` // checkpoint restores on rejoin
	Resyncs    int `json:"resyncs"`
	Detections int `json:"detections"`

	SimSeconds   float64 `json:"sim_seconds"`
	StallSeconds float64 `json:"stall_seconds"` // straggler slowdown charged
	DownSeconds  float64 `json:"down_seconds"`  // crash downtime + resync waits
}

// Report snapshots the run's degradation ledger.
func (c *Cluster) Report() Report {
	r := c.rep
	r.Nodes = c.Cfg.Nodes
	r.Policy = c.Cfg.Policy.String()
	r.Steps = c.steps
	r.Syncs = c.syncCount
	r.SimSeconds = c.SimSeconds()
	r.LiveNodes = c.liveCount()
	if c.Cfg.Feed != nil {
		s := c.Cfg.Feed.Stats()
		r.Feed = &s
	}
	r.PerNode = make([]NodeReport, len(c.nodes))
	for i, n := range c.nodes {
		nr := n.r
		nr.ID = n.id
		nr.Live = n.status == statusLive
		nr.SimSeconds = n.dev().Now()
		r.PerNode[i] = nr
	}
	return r
}
