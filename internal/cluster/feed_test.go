package cluster

import (
	"reflect"
	"testing"

	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/feed"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// newClusterFeed builds a shared feed over an in-memory low-rank dataset
// with one perNode-example chunk per node per step.
func newClusterFeed(t *testing.T, cfg Config, examples int, ledger bool) *feed.Feed {
	t.Helper()
	perNode := cfg.GlobalBatch / cfg.Nodes
	x := lowRank(rng.New(8), examples, cfg.Model.Visible)
	p, err := data.PlanChunks(data.PlanRequest{SourceLen: examples, Batch: perNode, ChunkExamples: perNode})
	if err != nil {
		t.Fatal(err)
	}
	f, err := feed.New(data.InMemory{X: x}, feed.Config{Plan: p, Window: 1, Ledger: ledger})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runFed trains a fresh cluster for steps steps over one shared feed.
func runFed(t *testing.T, cfg Config, steps int, seed uint64, examples int) (*Cluster, *feed.Feed) {
	t.Helper()
	f := newClusterFeed(t, cfg, examples, true)
	cfg.Feed = f
	cl, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, true, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		cl.Step(nil, 0.5) // the feed supplies the shards; x is ignored
	}
	return cl, f
}

// TestFeedClusterMatchesSlicedInput: with SyncEvery=1 and a dataset whose
// row walk matches the sliced-x walk, the shared-feed cluster follows the
// classic path bit-for-bit — shard-by-consumer replaces the per-node index
// math without changing the numerics.
func TestFeedClusterMatchesSlicedInput(t *testing.T) {
	const steps = 10
	cfg := smallCfg(3, 1)
	perNode := cfg.GlobalBatch / cfg.Nodes
	x := lowRank(rng.New(8), cfg.GlobalBatch, cfg.Model.Visible)

	classic, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer classic.Free()
	for i := 0; i < steps; i++ {
		classic.Step(x, 0.5)
	}

	// Global chunk s·N+i starts at ((s·N+i)·perNode) mod len. With
	// len = GlobalBatch = N·perNode, that is (i·perNode) mod len every
	// step — node i always trains rows [i·perNode, (i+1)·perNode), the
	// exact shard RowsView used to slice.
	p, err := data.PlanChunks(data.PlanRequest{SourceLen: cfg.GlobalBatch, Batch: perNode, ChunkExamples: perNode})
	if err != nil {
		t.Fatal(err)
	}
	f, err := feed.New(data.InMemory{X: x}, feed.Config{Plan: p, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Feed = f
	fed, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, fcfg, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Free()
	for i := 0; i < steps; i++ {
		fed.Step(nil, 0.5)
	}

	if !paramsEqual(classic.Download(), fed.Download()) {
		t.Fatal("shared-feed cluster diverged from sliced-input cluster")
	}
	if classic.SimSeconds() != fed.SimSeconds() {
		t.Fatalf("sim time diverged: %g vs %g", classic.SimSeconds(), fed.SimSeconds())
	}
	s := f.Stats()
	if s.Leases != steps*cfg.Nodes || s.Commits != s.Leases || s.Outstanding != 0 {
		t.Fatalf("feed stats %+v", s)
	}
}

// TestFeedClusterFaultedLedgerDeterministic is the tentpole's cluster
// acceptance gate: a fault-injected multi-node run over one shared feed
// completes, accumulates backpressure stalls while nodes are down, and
// produces a bit-identical lease/commit ledger across two runs.
func TestFeedClusterFaultedLedgerDeterministic(t *testing.T) {
	plan := &FaultPlan{Rate: 0.12, CrashFrac: 0.5, PermanentFrac: 0.3, RejoinAfter: 4, Seed: 11}
	run := func() (Report, []feed.Event) {
		cl, f := runFed(t, faultyCfg(4, 2, plan), 36, 7, 96)
		rep := cl.Report()
		cl.Free()
		return rep, f.Events()
	}
	r1, e1 := run()
	r2, e2 := run()
	if len(e1) == 0 {
		t.Fatal("empty feed ledger")
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("feed ledgers diverged across identical runs (%d vs %d events)", len(e1), len(e2))
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reports diverged:\n%+v\nvs\n%+v", r1, r2)
	}
	if r1.Crashes == 0 {
		t.Fatal("fault plan injected no crashes; the backpressure path was not exercised")
	}
	if r1.Feed == nil {
		t.Fatal("report carries no feed stats")
	}
	if r1.Feed.Stalls == 0 {
		t.Fatal("downed consumers pinned the watermark but no backpressure stalls were ledgered")
	}
	if r1.Feed.Leases == 0 || r1.Feed.Commits != r1.Feed.Leases {
		t.Fatalf("feed stats %+v: every granted lease must commit", r1.Feed)
	}
}

// TestFeedClusterRejoinSeeks: a crashed node's consumer seeks forward to
// the current step when it resumes training — the rejoin re-subscription
// at the checkpointed position.
func TestFeedClusterRejoinSeeks(t *testing.T) {
	plan := &FaultPlan{Script: []NodeFault{
		{Step: 3, Node: 1, Kind: FaultCrash, RejoinAfter: 4},
	}}
	cl, f := runFed(t, faultyCfg(3, 1, plan), 16, 7, 90)
	defer cl.Free()
	rep := cl.Report()
	if rep.Rejoins != 1 {
		t.Fatalf("rejoins %d", rep.Rejoins)
	}
	// Node 1 missed steps 3..7 (down + barrier resync); when it trains
	// again its cursor lags the step counter and must seek exactly once.
	if s := f.Stats(); s.Seeks != 1 {
		t.Fatalf("feed stats %+v, want one seek", s)
	}
	// The rejoined node's post-seek leases land on its own shard.
	for _, e := range f.Events() {
		if e.Kind == feed.EvLease && e.Seq%3 != e.Shard {
			t.Fatalf("lease off-shard: %+v", e)
		}
	}
}

// TestFeedClusterPermanentLossClosesConsumer: the failure detector closes
// a permanently lost node's consumer, releasing its backpressure.
func TestFeedClusterPermanentLossClosesConsumer(t *testing.T) {
	// Crash early in a long sync interval: the detector only runs at
	// barriers, so the frozen cursor has several steps to pin the watermark
	// and accumulate stalls before the step-4 barrier excises the node.
	plan := &FaultPlan{Script: []NodeFault{
		{Step: 1, Node: 2, Kind: FaultCrash, Permanent: true},
	}}
	cl, f := runFed(t, faultyCfg(3, 5, plan), 20, 7, 90)
	defer cl.Free()
	rep := cl.Report()
	if rep.PermanentLosses != 1 || rep.Detections == 0 {
		t.Fatalf("loss accounting: %+v", rep)
	}
	// While node 2 was dead-but-undetected its frozen cursor pinned the
	// watermark: stalls accumulated, then stopped after the close.
	s := f.Stats()
	if s.Stalls == 0 {
		t.Fatal("no backpressure stalls before the detector excised the dead node")
	}
	closes := 0
	var closeIdx, lastStallIdx int
	for i, e := range f.Events() {
		switch e.Kind {
		case feed.EvClose:
			if closes == 0 {
				closeIdx = i
			}
			closes++
		case feed.EvStall:
			lastStallIdx = i
		}
	}
	if closes == 0 {
		t.Fatal("no close event for the lost node's consumer")
	}
	if lastStallIdx > closeIdx {
		t.Fatal("backpressure stalls continued after the dead consumer was closed")
	}
	if s.Consumers != 2 {
		t.Fatalf("consumers %d, want 2 after one loss", s.Consumers)
	}
}

// TestFeedClusterValidation rejects mismatched feed geometry.
func TestFeedClusterValidation(t *testing.T) {
	cfg := smallCfg(3, 1)
	x := lowRank(rng.New(8), 24, cfg.Model.Visible)
	bad, err := data.PlanChunks(data.PlanRequest{SourceLen: 24, Batch: 8, ChunkExamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := feed.New(data.InMemory{X: x}, feed.Config{Plan: bad})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Feed = f // perNode is 4, plan stages 8-example chunks
	if _, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, true, 7); err == nil {
		t.Fatal("mismatched feed plan must be rejected")
	}

	wrongDim := tensor.NewMatrix(24, cfg.Model.Visible+1)
	p, err := data.PlanChunks(data.PlanRequest{SourceLen: 24, Batch: 4, ChunkExamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := feed.New(data.InMemory{X: wrongDim}, feed.Config{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Feed = f2
	if _, err := New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, true, 7); err == nil {
		t.Fatal("mismatched feed dim must be rejected")
	}
}
