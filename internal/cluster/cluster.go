// Package cluster simulates the distributed alternative the paper frames
// the Xeon Phi against (§I, §III): data-parallel training across N
// commodity nodes with periodic parameter averaging over an Ethernet
// interconnect — the synchronous cousin of Dean et al.'s large-scale
// approach the paper cites as "Google has distributed a very large deep
// network to hundreds of computing nodes".
//
// Each node owns a simulated device (typically a host CPU) and a model
// replica training on its shard of every global batch. Every SyncEvery
// local steps the replicas average their parameters with a ring all-reduce
// whose cost is latency·2(N−1) + 2·(N−1)/N·bytes/bandwidth. The package's
// experiment answers the paper's implicit question — how much commodity
// cluster does one coprocessor replace? — and reproduces the known result
// that communication, not compute, bounds synchronous clusters on fat
// models.
//
// Unlike the idealized baseline, the cluster degrades the way real ones
// do. A FaultPlan injects deterministic per-node crash faults, transient
// straggler stalls and rejoin events (each node draws from its own seeded
// stream, built on the internal/device fault plumbing). A heartbeat
// failure detector excises silent nodes from the ring, so the all-reduce
// runs over the live membership with averaging weights rescaled to the
// surviving shards and the ring time recomputed for the shrunken ring.
// Straggler mitigation is a per-run Policy: wait for the laggard, drop it
// for the round, or race a hot spare against it. A crashed node rejoins by
// restoring the lead replica's PHCK checkpoint and resynchronizing
// parameters at the next barrier before re-entering the ring. Report
// accounts every sync, drop, stall, detection and resync.
package cluster

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/feed"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// Interconnect models the network between nodes.
type Interconnect struct {
	// Bandwidth in bytes/s per link (1 GbE ≈ 125e6, 10 GbE ≈ 1.25e9).
	Bandwidth float64
	// Latency per message hop.
	Latency float64
}

// GigabitEthernet returns the 2013-era commodity interconnect.
func GigabitEthernet() Interconnect { return Interconnect{Bandwidth: 125e6, Latency: 50e-6} }

// TenGigabitEthernet returns the contemporary datacenter interconnect.
func TenGigabitEthernet() Interconnect { return Interconnect{Bandwidth: 1.25e9, Latency: 20e-6} }

// AllReduceTime returns the modeled ring all-reduce time for the given
// payload across n nodes.
func (ic Interconnect) AllReduceTime(bytes int64, n int) float64 {
	if n <= 1 {
		return 0
	}
	hops := float64(2 * (n - 1))
	return ic.Latency*hops + 2*float64(n-1)/float64(n)*float64(bytes)/ic.Bandwidth
}

// BroadcastTime returns the modeled point-to-point parameter push used to
// resynchronize one replica (a rejoined node, or a laggard dropped from a
// round pulling the fresh average).
func (ic Interconnect) BroadcastTime(bytes int64) float64 {
	return ic.Latency + float64(bytes)/ic.Bandwidth
}

// Policy selects the straggler-mitigation behavior at sync barriers.
type Policy int

const (
	// WaitAll waits for every participant: the slowest node bounds the
	// round (the synchronous baseline, and the only policy that never
	// changes numerics).
	WaitAll Policy = iota
	// TimeoutDrop excludes participants that miss the round deadline from
	// that round's average; a dropped laggard pulls the fresh average when
	// it finally finishes, discarding its own round.
	TimeoutDrop
	// BackupNode races a hot spare against each laggard: the spare
	// recomputes the laggard's shard at clean speed from the deadline, and
	// whichever finishes first bounds the shard. The gradients are
	// bit-identical, so only the clock changes.
	BackupNode
)

// String names the policy the way phisim's -policy flag spells it.
func (p Policy) String() string {
	switch p {
	case WaitAll:
		return "waitall"
	case TimeoutDrop:
		return "drop"
	case BackupNode:
		return "backup"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a -policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "waitall":
		return WaitAll, nil
	case "drop":
		return TimeoutDrop, nil
	case "backup":
		return BackupNode, nil
	}
	return 0, fmt.Errorf("cluster: unknown policy %q (want waitall | drop | backup)", s)
}

// Config parameterizes a cluster training run.
type Config struct {
	Model autoencoder.Config
	// Nodes is the cluster size; GlobalBatch the combined minibatch,
	// split evenly (must divide).
	Nodes       int
	GlobalBatch int
	// SyncEvery is the number of local steps between parameter-averaging
	// rounds (1 = fully synchronous SGD; larger values trade gradient
	// staleness for less communication — "local SGD").
	SyncEvery int
	// Net is the interconnect model.
	Net Interconnect

	// Faults arms the per-node fault model; nil trains the ideal cluster.
	Faults *FaultPlan
	// Policy is the straggler-mitigation policy at sync barriers.
	Policy Policy
	// DropTimeout is how long past the round's fastest participant the
	// TimeoutDrop and BackupNode policies wait before acting. Zero derives
	// 2× the round's mean step time.
	DropTimeout float64
	// HeartbeatTimeout is the failure detector's patience: a ring member
	// silent for this long at a barrier is declared dead and excised, and
	// the survivors cannot complete the round before having waited it out.
	// Zero derives 3× the round's mean step time.
	HeartbeatTimeout float64
	// CheckpointPath, when set, additionally persists the lead replica's
	// PHCK checkpoint to this file at every sync round (the rejoin handoff
	// itself uses the in-memory encoding either way).
	CheckpointPath string

	// Feed, when non-nil, makes every node a distinct consumer of this
	// shared dataset server (DESIGN.md §15), replacing the per-node index
	// slicing of Step's x argument (which is then ignored). The feed's
	// plan must carry exactly one per-node batch per chunk, so node i's
	// step-s shard is global chunk s·Nodes+i by the feed's deterministic
	// shard assignment. A rejoining node re-seeks its consumer to the
	// current step; a node the failure detector declares permanently lost
	// has its consumer closed, releasing its backpressure on the feed.
	Feed *feed.Feed
}

// Cluster is a set of model replicas with synchronized simulated time.
type Cluster struct {
	Cfg     Config
	nodes   []*node
	perNode int
	paramsB int64

	syncedAt  float64 // simulated time of the last completed barrier
	steps     int
	syncCount int

	faulty   bool
	plan     FaultPlan // defaults filled (zero value when Cfg.Faults is nil)
	scripted map[int][]NodeFault
	ckptBlob []byte // lead replica's encoded PHCK checkpoint at the last sync

	rep   Report
	freed bool
}

// New builds the cluster. Every node gets a fresh device of the given
// architecture at the given optimization level, and all replicas start from
// the same seed.
func New(arch *sim.Arch, lvl core.OptLevel, cfg Config, numeric bool, seed uint64) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.GlobalBatch <= 0 || cfg.GlobalBatch%cfg.Nodes != 0 {
		return nil, fmt.Errorf("cluster: global batch %d must divide evenly across %d nodes", cfg.GlobalBatch, cfg.Nodes)
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 1
	}
	if cfg.Policy != WaitAll && cfg.Policy != TimeoutDrop && cfg.Policy != BackupNode {
		return nil, fmt.Errorf("cluster: unknown policy %d", int(cfg.Policy))
	}
	if cfg.DropTimeout < 0 || cfg.HeartbeatTimeout < 0 {
		return nil, fmt.Errorf("cluster: negative timeout")
	}
	c := &Cluster{Cfg: cfg, perNode: cfg.GlobalBatch / cfg.Nodes}
	if cfg.Faults != nil {
		plan, err := cfg.Faults.withDefaults(cfg.Nodes)
		if err != nil {
			return nil, err
		}
		c.faulty = true
		c.plan = plan
		c.scripted = plan.scriptIndex()
	}
	if f := cfg.Feed; f != nil {
		fp := f.Plan()
		if fp.Batch != c.perNode || fp.ChunkExamples != c.perNode {
			return nil, fmt.Errorf("cluster: feed plan stages %d-example chunks of batch %d, want one %d-example chunk per node per step",
				fp.ChunkExamples, fp.Batch, c.perNode)
		}
		if f.Dim() != cfg.Model.Visible {
			return nil, fmt.Errorf("cluster: feed dim %d, model visible %d", f.Dim(), cfg.Model.Visible)
		}
	}
	v, h := cfg.Model.Visible, cfg.Model.Hidden
	c.paramsB = int64(v*h+h+h*v+v) * 8
	for i := 0; i < cfg.Nodes; i++ {
		dev := device.New(arch, numeric, nil)
		ctx := core.NewContext(dev, lvl, 0, seed+uint64(i))
		m, err := autoencoder.New(ctx, cfg.Model, c.perNode, seed) // same seed: identical init
		if err != nil {
			c.Free()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		n := &node{id: i, m: m, status: statusLive, inRing: true}
		if c.faulty {
			n.stream = c.plan.stream(i)
		}
		if cfg.Feed != nil {
			n.feedc, err = cfg.Feed.Subscribe(fmt.Sprintf("node%d", i))
			if err != nil {
				c.Free()
				return nil, fmt.Errorf("cluster: node %d: %w", i, err)
			}
			if numeric {
				n.stage = tensor.NewMatrix(c.perNode, cfg.Model.Visible)
			}
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Free releases every replica. Free is idempotent: a second call is a
// no-op, so deferred cleanup composes with explicit teardown.
func (c *Cluster) Free() {
	if c.freed {
		return
	}
	c.freed = true
	for _, n := range c.nodes {
		if n.feedc != nil {
			n.feedc.Close()
		}
		n.m.Free()
	}
	c.nodes = nil
}

// numeric reports whether the replicas really compute.
func (c *Cluster) numeric() bool { return len(c.nodes) > 0 && c.nodes[0].dev().Numeric }

// Step runs one global step: rejoins scheduled for this step fire, fault
// events are injected, every live node trains on its shard of x
// (GlobalBatch×Visible; nil on timing-only devices), and every SyncEvery
// steps the ring synchronizes over the live membership. Returns the mean
// reconstruction error across the nodes that trained (0 on timing-only
// devices or when every node is down).
func (c *Cluster) Step(x *tensor.Matrix, lr float64) float64 {
	step := c.steps // 0-based index of the step being executed

	// Scheduled rejoins fire before fault injection, so a node cannot
	// crash and rejoin within the same step.
	for _, n := range c.nodes {
		if n.status == statusCrashed && n.rejoinAt == step {
			c.rejoin(n)
		}
	}
	if c.faulty {
		for _, n := range c.nodes {
			if n.status == statusLive && !n.resync {
				c.injectFaults(n, step)
			}
		}
	}

	lossSum, lossN := 0.0, 0
	for _, n := range c.nodes {
		if n.status != statusLive || n.resync {
			continue
		}
		dev := n.dev()
		// Lock-step issue: a node's next shard transfer starts no earlier
		// than the last barrier and its own previous step's end.
		earliest := c.syncedAt
		if n.stepEnd > earliest {
			earliest = n.stepEnd
		}
		start := earliest
		if t := dev.Now(); t > start {
			start = t
		}
		var lease feed.Lease
		leased := false
		if c.Cfg.Feed != nil {
			// The node's consumer must sit at the current step: a rejoined
			// node (or one that idled through an outage) re-seeks here —
			// the ordinal is the global step, so its lease lands on chunk
			// step·Nodes+id, exactly the shard the index math used to cut.
			if n.feedc.Pos() != step {
				if err := n.feedc.Seek(step); err != nil {
					continue
				}
			}
			l, err := n.feedc.Lease()
			if err != nil {
				// Horizon exhausted: the node idles this step.
				continue
			}
			lease, leased = l, true
		}
		shard := dev.MustAlloc(c.perNode, c.Cfg.Model.Visible)
		if !dev.Numeric {
			dev.CopyIn(shard, nil, earliest)
		} else if leased {
			if err := c.Cfg.Feed.Fill(lease, n.stage); err != nil {
				// Unreachable after New's geometry validation: the lease
				// was granted this step and has not been committed.
				panic(fmt.Sprintf("cluster: feed fill: %v", err))
			}
			dev.CopyIn(shard, n.stage, earliest)
		} else {
			dev.CopyIn(shard, x.RowsView(n.id*c.perNode, (n.id+1)*c.perNode).Contiguous(), earliest)
		}
		lossSum += n.m.Step(shard, lr)
		lossN++
		dev.Free(shard)
		end := dev.Now()
		n.rawDur = end - start
		if n.stallLeft > 0 {
			// The straggler's slowdown is injected idle time on its compute
			// engine: numerics identical, clock slower.
			extra := (n.stallFactor - 1) * n.rawDur
			dev.StallCompute(extra)
			n.stallLeft--
			n.r.StallSeconds += extra
			end = dev.Now()
		}
		n.stepEnd = end
		n.lastBeat = end
		n.r.Steps++
		if leased {
			// The chunk is drained once the step's compute ends; the
			// commit timestamp is the deterministic simulated clock, so
			// fault-injected runs ledger identically across repeats.
			if err := n.feedc.Commit(lease, end, false); err != nil {
				panic(fmt.Sprintf("cluster: feed commit: %v", err))
			}
		}
	}
	c.steps++

	if c.steps%c.Cfg.SyncEvery == 0 && c.Cfg.Nodes > 1 {
		c.sync()
	}
	if lossN == 0 || !c.numeric() {
		return 0
	}
	return lossSum / float64(lossN)
}

// sync runs one barrier round: the failure detector excises silent ring
// members, the straggler policy decides which participants the round keeps,
// the kept replicas all-reduce-average over the shrunken ring, rejoined
// nodes resynchronize, and the lead replica's checkpoint is refreshed.
func (c *Cluster) sync() {
	c.syncCount++
	c.rep.Syncs++
	if metricsOn() {
		mSyncs.Inc()
	}
	parts, receivers := c.partition()
	if len(parts) == 0 {
		// Total outage: nothing trained this round, so there is nothing to
		// average and no survivor to serve a resync from.
		return
	}

	// Round statistics drive the derived timeouts.
	meanDur := 0.0
	minEnd, maxEnd := math.Inf(1), math.Inf(-1)
	for _, n := range parts {
		meanDur += n.rawDur
		if n.stepEnd < minEnd {
			minEnd = n.stepEnd
		}
		if n.stepEnd > maxEnd {
			maxEnd = n.stepEnd
		}
	}
	meanDur /= float64(len(parts))
	hbTimeout := c.Cfg.HeartbeatTimeout
	if hbTimeout == 0 {
		hbTimeout = 3 * meanDur
	}
	dropTimeout := c.Cfg.DropTimeout
	if dropTimeout == 0 {
		dropTimeout = 2 * meanDur
	}
	deadline := minEnd + dropTimeout

	kept := parts
	var dropped []*node
	barrier := maxEnd // WaitAll: the laggard bounds the round
	switch c.Cfg.Policy {
	case TimeoutDrop:
		if maxEnd > deadline {
			kept = kept[:0:0]
			for _, n := range parts {
				if n.stepEnd <= deadline {
					kept = append(kept, n)
				} else {
					dropped = append(dropped, n)
					n.r.Drops++
					c.rep.Drops++
					if metricsOn() {
						mDrops.Inc()
					}
				}
			}
			// The kept nodes wait out the deadline before declaring the
			// laggards dropped.
			barrier = deadline
		}
	case BackupNode:
		barrier = minEnd
		for _, n := range parts {
			end := n.stepEnd
			if end > deadline {
				// The spare starts when the deadline passes and recomputes
				// the laggard's shard at the round's clean pace; the
				// gradients are bit-identical, so the faster of the two
				// bounds the shard.
				if spare := deadline + meanDur; spare < end {
					end = spare
					c.rep.BackupRuns++
					if metricsOn() {
						mBackupRuns.Inc()
					}
				}
			}
			if end > barrier {
				barrier = end
			}
		}
	}

	// The failure detector: survivors cannot complete the round while an
	// un-excised member is silent — they wait out the heartbeat timeout,
	// then run the ring over the shrunken membership.
	if wait := c.detectFailures(hbTimeout); wait > barrier {
		barrier = wait
	}

	// Ring all-reduce over the kept membership, averaging weights rescaled
	// to the surviving shard sizes (equal shards, so the mean over the
	// survivors), and the ring time recomputed for the shrunken ring.
	c.syncedAt = barrier + c.Cfg.Net.AllReduceTime(c.paramsB, len(kept))
	var avg *autoencoder.Params
	if c.numeric() && len(kept) > 1 {
		avg = averageParams(kept)
		for _, n := range kept {
			n.m.Upload(avg)
		}
	}

	// Dropped laggards pull the fresh average when they finally finish,
	// discarding their own round's work.
	for _, n := range dropped {
		ready := n.stepEnd
		if c.syncedAt > ready {
			ready = c.syncedAt
		}
		ready += c.Cfg.Net.BroadcastTime(c.paramsB)
		if avg != nil {
			n.m.Upload(avg)
		}
		c.catchUp(n, ready)
	}

	// Rejoined replicas resynchronize: a point-to-point push of the fresh
	// parameters before they re-enter the ring.
	for _, n := range receivers {
		ready := c.syncedAt + c.Cfg.Net.BroadcastTime(c.paramsB)
		if c.numeric() {
			if avg == nil {
				avg = kept[0].m.Download()
			}
			n.m.Upload(avg)
		}
		c.catchUp(n, ready)
		n.resync = false
		n.r.Resyncs++
		c.rep.Resyncs++
		if metricsOn() {
			mResyncs.Inc()
		}
	}

	// Refresh the lead replica's crash-consistent checkpoint — the state a
	// node rejoining after a future crash will boot from. The download is
	// charged to the lead's transfer engine: checkpointing is not free.
	if c.faulty {
		lead := kept[0]
		var blob bytes.Buffer
		if err := lead.m.SaveState(&blob); err == nil {
			ck := &core.Checkpoint{Step: c.steps, Model: blob.Bytes()}
			c.ckptBlob = core.EncodeCheckpoint(ck)
			c.rep.Checkpoints++
			if metricsOn() {
				mCheckpoints.Inc()
			}
			if c.Cfg.CheckpointPath != "" {
				// Best effort: a failed disk write degrades to the
				// in-memory handoff rather than killing training.
				_ = core.WriteCheckpoint(c.Cfg.CheckpointPath, ck)
			}
		}
	}
}

// catchUp advances a node's clock to ready (injected idle time on its
// compute engine) and re-enters it into the lock-step issue order there.
func (c *Cluster) catchUp(n *node, ready float64) {
	if gap := ready - n.dev().Now(); gap > 0 {
		n.dev().StallCompute(gap)
		n.r.DownSeconds += gap
	}
	n.stepEnd = ready
	n.lastBeat = ready
}

// averageParams returns the mean of the participants' parameters. The sum
// is accumulated in ascending node-id order whatever order the participant
// list was assembled in, so the result is bit-identical regardless of node
// iteration order.
func averageParams(parts []*node) *autoencoder.Params {
	sorted := append([]*node(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	params := make([]*autoencoder.Params, len(sorted))
	for i, n := range sorted {
		params[i] = n.m.Download()
	}
	avg := params[0]
	accumulate := func(dst, src *tensor.Matrix) {
		for r := 0; r < dst.Rows; r++ {
			d, s := dst.RowView(r), src.RowView(r)
			for j := range d {
				d[j] += s[j]
			}
		}
	}
	for _, p := range params[1:] {
		accumulate(avg.W1, p.W1)
		accumulate(avg.W2, p.W2)
		for j := range avg.B1 {
			avg.B1[j] += p.B1[j]
		}
		for j := range avg.B2 {
			avg.B2[j] += p.B2[j]
		}
	}
	inv := 1 / float64(len(params))
	scale := func(m *tensor.Matrix) {
		for r := 0; r < m.Rows; r++ {
			row := m.RowView(r)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	scale(avg.W1)
	scale(avg.W2)
	for j := range avg.B1 {
		avg.B1[j] *= inv
	}
	for j := range avg.B2 {
		avg.B2[j] *= inv
	}
	return avg
}

// SimSeconds returns the cluster makespan: the last barrier or the latest
// surviving node, whichever is later.
func (c *Cluster) SimSeconds() float64 {
	t := c.syncedAt
	for _, n := range c.nodes {
		if n.status == statusLeft {
			continue
		}
		if now := n.dev().Now(); now > t {
			t = now
		}
	}
	return t
}

// Steps returns global steps executed; Syncs the barrier rounds.
func (c *Cluster) Steps() int { return c.steps }
func (c *Cluster) Syncs() int { return c.syncCount }

// Download returns the lead live replica's parameters (all kept replicas
// agree right after a sync round).
func (c *Cluster) Download() *autoencoder.Params {
	for _, n := range c.nodes {
		if n.status == statusLive && !n.resync {
			return n.m.Download()
		}
	}
	for _, n := range c.nodes {
		if n.status == statusLive {
			return n.m.Download()
		}
	}
	return c.nodes[0].m.Download()
}

// ctxOf exposes a node's context for tests.
func (c *Cluster) ctxOf(i int) *blas.Context { return c.nodes[i].m.Ctx }
