// Package cluster simulates the distributed alternative the paper frames
// the Xeon Phi against (§I, §III): data-parallel training across N
// commodity nodes with periodic parameter averaging over an Ethernet
// interconnect — the synchronous cousin of Dean et al.'s large-scale
// approach the paper cites as "Google has distributed a very large deep
// network to hundreds of computing nodes".
//
// Each node owns a simulated device (typically a host CPU) and a model
// replica training on its shard of every global batch. Every SyncEvery
// local steps the replicas average their parameters with a ring all-reduce
// whose cost is latency·2(N−1) + 2·(N−1)/N·bytes/bandwidth. The package's
// experiment answers the paper's implicit question — how much commodity
// cluster does one coprocessor replace? — and reproduces the known result
// that communication, not compute, bounds synchronous clusters on fat
// models.
package cluster

import (
	"fmt"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/core"
	"phideep/internal/device"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// Interconnect models the network between nodes.
type Interconnect struct {
	// Bandwidth in bytes/s per link (1 GbE ≈ 125e6, 10 GbE ≈ 1.25e9).
	Bandwidth float64
	// Latency per message hop.
	Latency float64
}

// GigabitEthernet returns the 2013-era commodity interconnect.
func GigabitEthernet() Interconnect { return Interconnect{Bandwidth: 125e6, Latency: 50e-6} }

// TenGigabitEthernet returns the contemporary datacenter interconnect.
func TenGigabitEthernet() Interconnect { return Interconnect{Bandwidth: 1.25e9, Latency: 20e-6} }

// AllReduceTime returns the modeled ring all-reduce time for the given
// payload across n nodes.
func (ic Interconnect) AllReduceTime(bytes int64, n int) float64 {
	if n <= 1 {
		return 0
	}
	hops := float64(2 * (n - 1))
	return ic.Latency*hops + 2*float64(n-1)/float64(n)*float64(bytes)/ic.Bandwidth
}

// Config parameterizes a cluster training run.
type Config struct {
	Model autoencoder.Config
	// Nodes is the cluster size; GlobalBatch the combined minibatch,
	// split evenly (must divide).
	Nodes       int
	GlobalBatch int
	// SyncEvery is the number of local steps between parameter-averaging
	// rounds (1 = fully synchronous SGD; larger values trade gradient
	// staleness for less communication — "local SGD").
	SyncEvery int
	// Net is the interconnect model.
	Net Interconnect
}

// Cluster is a set of model replicas with synchronized simulated time.
type Cluster struct {
	Cfg       Config
	nodes     []*autoencoder.Model
	perNode   int
	syncedAt  float64
	paramsB   int64
	steps     int
	syncCount int
}

// New builds the cluster. Every node gets a fresh device of the given
// architecture at the given optimization level, and all replicas start from
// the same seed.
func New(arch *sim.Arch, lvl core.OptLevel, cfg Config, numeric bool, seed uint64) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.GlobalBatch <= 0 || cfg.GlobalBatch%cfg.Nodes != 0 {
		return nil, fmt.Errorf("cluster: global batch %d must divide evenly across %d nodes", cfg.GlobalBatch, cfg.Nodes)
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 1
	}
	c := &Cluster{Cfg: cfg, perNode: cfg.GlobalBatch / cfg.Nodes}
	v, h := cfg.Model.Visible, cfg.Model.Hidden
	c.paramsB = int64(v*h+h+h*v+v) * 8
	for i := 0; i < cfg.Nodes; i++ {
		dev := device.New(arch, numeric, nil)
		ctx := core.NewContext(dev, lvl, 0, seed+uint64(i))
		m, err := autoencoder.New(ctx, cfg.Model, c.perNode, seed) // same seed: identical init
		if err != nil {
			c.Free()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, m)
	}
	return c, nil
}

// Free releases every replica.
func (c *Cluster) Free() {
	for _, m := range c.nodes {
		m.Free()
	}
	c.nodes = nil
}

// Step runs one global step: every node trains on its shard of x
// (GlobalBatch×Visible; nil on timing-only devices), and every SyncEvery
// steps the replicas all-reduce-average their parameters. Returns the mean
// reconstruction error across nodes (0 on timing-only devices).
func (c *Cluster) Step(x *tensor.Matrix, lr float64) float64 {
	lossSum := 0.0
	maxEnd := 0.0
	for i, m := range c.nodes {
		dev := m.Ctx.Dev
		shard := dev.MustAlloc(c.perNode, c.Cfg.Model.Visible)
		if dev.Numeric {
			dev.CopyIn(shard, x.RowsView(i*c.perNode, (i+1)*c.perNode).Contiguous(), c.syncedAt)
		} else {
			dev.CopyIn(shard, nil, c.syncedAt)
		}
		lossSum += m.Step(shard, lr)
		dev.Free(shard)
		if t := dev.Now(); t > maxEnd {
			maxEnd = t
		}
	}
	c.steps++

	if c.steps%c.Cfg.SyncEvery == 0 && c.Cfg.Nodes > 1 {
		c.averageParameters()
		maxEnd += c.Cfg.Net.AllReduceTime(c.paramsB, c.Cfg.Nodes)
		c.syncCount++
	}
	c.syncedAt = maxEnd
	if !c.nodes[0].Ctx.Dev.Numeric {
		return 0
	}
	return lossSum / float64(c.Cfg.Nodes)
}

// averageParameters replaces every replica's parameters with the mean
// (numeric devices only; on timing-only devices the communication cost is
// still charged by Step).
func (c *Cluster) averageParameters() {
	if !c.nodes[0].Ctx.Dev.Numeric {
		return
	}
	params := make([]*autoencoder.Params, len(c.nodes))
	for i, m := range c.nodes {
		params[i] = m.Download()
	}
	avg := params[0]
	inv := 1 / float64(len(params))
	accumulate := func(dst, src *tensor.Matrix) {
		for r := 0; r < dst.Rows; r++ {
			d, s := dst.RowView(r), src.RowView(r)
			for j := range d {
				d[j] += s[j]
			}
		}
	}
	for _, p := range params[1:] {
		accumulate(avg.W1, p.W1)
		accumulate(avg.W2, p.W2)
		for j := range avg.B1 {
			avg.B1[j] += p.B1[j]
		}
		for j := range avg.B2 {
			avg.B2[j] += p.B2[j]
		}
	}
	scale := func(m *tensor.Matrix) {
		for r := 0; r < m.Rows; r++ {
			row := m.RowView(r)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	scale(avg.W1)
	scale(avg.W2)
	for j := range avg.B1 {
		avg.B1[j] *= inv
	}
	for j := range avg.B2 {
		avg.B2[j] *= inv
	}
	for _, m := range c.nodes {
		m.Upload(avg)
	}
}

// SimSeconds returns the synchronized simulated time.
func (c *Cluster) SimSeconds() float64 { return c.syncedAt }

// Steps returns global steps executed; Syncs the averaging rounds.
func (c *Cluster) Steps() int { return c.steps }
func (c *Cluster) Syncs() int { return c.syncCount }

// Download returns node 0's parameters (all nodes agree right after a
// sync round).
func (c *Cluster) Download() *autoencoder.Params { return c.nodes[0].Download() }

// ctxOf exposes a node's context for tests.
func (c *Cluster) ctxOf(i int) *blas.Context { return c.nodes[i].Ctx }
