package rbm

import (
	"bytes"
	"testing"

	"phideep/internal/rng"
	"phideep/internal/tensor"
)

func TestParamsSaveLoad(t *testing.T) {
	cfg := Config{Visible: 5, Hidden: 3}
	p := NewParams(cfg, 1)
	p.B.Randomize(rng.New(5), -1, 1)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q := NewParams(cfg, 7)
	if err := q.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(p.W, q.W) != 0 || !tensor.EqualVec(p.B, q.B, 0) || !tensor.EqualVec(p.C, q.C, 0) {
		t.Fatal("round trip lost data")
	}
}
