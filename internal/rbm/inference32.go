package rbm

import (
	"fmt"

	"phideep/internal/kernels"
	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Params32 is a float32 snapshot of trained RBM parameters, built once per
// served model by To32 and shared read-only by the reduced-precision
// inference replicas. Training never sees these.
type Params32 struct {
	W *tensor.Matrix32 // Visible×Hidden
	B tensor.Vector32  // visible bias (length Visible)
	C tensor.Vector32  // hidden bias (length Hidden)
}

// To32 rounds the parameters to float32.
func (p *Params) To32() *Params32 {
	return &Params32{W: p.W.To32(), B: p.B.To32(), C: p.C.To32()}
}

// Inference32 is a forward-only float32 replica of a trained RBM running
// host-side on the packed f32 kernels. Weights are shared read-only; each
// replica owns private activation workspaces sized for maxBatch. Not safe
// for concurrent use of a single replica.
type Inference32 struct {
	cfg  Config
	p    *Params32
	pool *parallel.Pool
	lvl  kernels.Level

	h *tensor.Matrix32 // maxBatch×Hidden hidden probabilities
	v *tensor.Matrix32 // maxBatch×Visible reconstruction
}

// NewInference32 builds a replica over the shared snapshot p. pool may be
// nil for sequential execution; lvl picks the kernel ladder rung.
func NewInference32(pool *parallel.Pool, lvl kernels.Level, cfg Config, maxBatch int, p *Params32) *Inference32 {
	if maxBatch <= 0 {
		panic(fmt.Sprintf("rbm: NewInference32 maxBatch %d", maxBatch))
	}
	return &Inference32{
		cfg: cfg, p: p, pool: pool, lvl: lvl,
		h: tensor.NewMatrix32(maxBatch, cfg.Hidden),
		v: tensor.NewMatrix32(maxBatch, cfg.Visible),
	}
}

// Encode computes the hidden probabilities h = σ(x·W + c) for the batch x
// (one example per row), returning a workspace view valid until the next
// call.
func (m *Inference32) Encode(x *tensor.Matrix32) *tensor.Matrix32 {
	if x.Cols != m.cfg.Visible || x.Rows > m.h.Rows {
		panic(fmt.Sprintf("rbm: Encode32 input %dx%d, want ≤%dx%d", x.Rows, x.Cols, m.h.Rows, m.cfg.Visible))
	}
	h := m.h.RowsView(0, x.Rows)
	kernels.Gemm32(m.pool, m.lvl, false, false, 1, x, m.p.W, 0, h)
	kernels.AddBiasRow32(m.pool, m.lvl, h, m.p.C)
	kernels.Sigmoid32(m.pool, m.lvl, h, h)
	return h
}

// Reconstruct computes the mean-field round trip: hidden probabilities
// σ(x·W + c), then v = h·Wᵀ + b squashed by σ for binary visibles or left
// linear for Gaussian visibles (Config.GaussianVisible).
func (m *Inference32) Reconstruct(x *tensor.Matrix32) *tensor.Matrix32 {
	h := m.Encode(x)
	v := m.v.RowsView(0, x.Rows)
	kernels.Gemm32(m.pool, m.lvl, false, true, 1, h, m.p.W, 0, v)
	kernels.AddBiasRow32(m.pool, m.lvl, v, m.p.B)
	if !m.cfg.GaussianVisible {
		kernels.Sigmoid32(m.pool, m.lvl, v, v)
	}
	return v
}
