package rbm

import (
	"testing"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
)

func TestWeightDecayShrinksWeights(t *testing.T) {
	run := func(lambda float64) float64 {
		cfg := Config{Visible: 8, Hidden: 5, Lambda: lambda, SampleHidden: true}
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := blas.NewContext(dev, kernels.ParallelBlocked, 3)
		m, err := New(ctx, cfg, 20, 4)
		if err != nil {
			t.Fatal(err)
		}
		x := stripeBatch(rng.New(5), 20, 8)
		dx := dev.MustAlloc(20, 8)
		dev.CopyIn(dx, x, 0)
		for i := 0; i < 200; i++ {
			m.Step(dx, 0.3)
		}
		return m.Download().W.FrobeniusNorm()
	}
	plain := run(0)
	decayed := run(0.01)
	if !(decayed < plain) {
		t.Fatalf("weight decay did not shrink weights: %g vs %g", decayed, plain)
	}
}

func TestWeightDecayMatchesManualGradient(t *testing.T) {
	cfg := Config{Visible: 5, Hidden: 3, Lambda: 0.02}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := New(ctx, cfg, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Download()
	x := binaryBatch(rng.New(8), 6, 5, 0.5)
	dx := dev.MustAlloc(6, 5)
	dev.CopyIn(dx, x, 0)
	m.Gradient(dx)
	// Reference: mean-field CD gradient minus λW.
	ref := ZeroGrad(Config{Visible: 5, Hidden: 3})
	CDGradMeanField(Config{Visible: 5, Hidden: 3}, p, x, ref)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			want := ref.W.At(i, j) - cfg.Lambda*p.W.At(i, j)
			if got := m.GW.Mat.At(i, j); got != want && (got-want > 1e-12 || want-got > 1e-12) {
				t.Fatalf("GW[%d,%d] = %g want %g", i, j, got, want)
			}
		}
	}
}

func TestSparsityRegularizerDrivesHiddenActivity(t *testing.T) {
	meanActivity := func(cost float64) float64 {
		cfg := Config{Visible: 10, Hidden: 8, SampleHidden: true,
			SparsityTarget: 0.1, SparsityCost: cost}
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := blas.NewContext(dev, kernels.ParallelBlocked, 9)
		m, err := New(ctx, cfg, 30, 10)
		if err != nil {
			t.Fatal(err)
		}
		x := stripeBatch(rng.New(11), 30, 10)
		dx := dev.MustAlloc(30, 10)
		dev.CopyIn(dx, x, 0)
		for i := 0; i < 400; i++ {
			m.Step(dx, 0.2)
		}
		// Measure the positive-phase hidden mean after training.
		m.Gradient(dx)
		return m.HiddenProbs().Mat.Mean()
	}
	free := meanActivity(0)
	sparse := meanActivity(2)
	if !(sparse < free) {
		t.Fatalf("sparsity regularizer did not reduce hidden activity: %g vs %g", sparse, free)
	}
	if d := sparse - 0.1; d > 0.25 || d < -0.1 {
		t.Fatalf("sparse activity %g far from target 0.1", sparse)
	}
}

func TestRegularizerValidation(t *testing.T) {
	for _, bad := range []Config{
		{Visible: 4, Hidden: 2, Lambda: -1},
		{Visible: 4, Hidden: 2, SparsityCost: -1},
		{Visible: 4, Hidden: 2, SparsityCost: 1, SparsityTarget: 0},
		{Visible: 4, Hidden: 2, SparsityCost: 1, SparsityTarget: 1},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should fail", bad)
		}
	}
	// Buffers freed including rowH.
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, err := New(ctx, Config{Visible: 4, Hidden: 2, SparsityTarget: 0.1, SparsityCost: 1}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Free()
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}
