package rbm

import (
	"math"
	"testing"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// gaussianClusters samples real-valued data from two Gaussian clusters —
// the kind of continuous input (natural-image patches) a binary RBM cannot
// model but a Gaussian–Bernoulli RBM can.
func gaussianClusters(r *rng.RNG, n, dim int) *tensor.Matrix {
	x := tensor.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		center := -1.0
		if r.Float64() < 0.5 {
			center = 1.0
		}
		for j := range row {
			c := center
			if j >= dim/2 {
				c = -center
			}
			row[j] = c + 0.3*r.Norm()
		}
	}
	return x
}

func TestGaussianVisibleMeanFieldMatchesReference(t *testing.T) {
	cfg := Config{Visible: 6, Hidden: 4, GaussianVisible: true}
	batch := 9
	x := gaussianClusters(rng.New(1), batch, cfg.Visible)
	p := NewParams(cfg, 2)
	p.W.RandomizeNorm(rng.New(3), 0.3)
	ref := ZeroGrad(cfg)
	CDGradMeanField(cfg, p, x, ref)

	for _, lvl := range []kernels.Level{kernels.Naive, kernels.ParallelBlocked} {
		for _, improved := range []bool{false, true} {
			dev := device.New(sim.XeonPhi5110P(), true, nil)
			ctx := blas.NewContext(dev, lvl, 1)
			ctx.AutoFuse = improved
			ctx.AutoConcurrent = improved
			m, err := New(ctx, cfg, batch, 2)
			if err != nil {
				t.Fatal(err)
			}
			m.Upload(p)
			dx := dev.MustAlloc(batch, cfg.Visible)
			dev.CopyIn(dx, x, 0)
			m.Gradient(dx)
			gw, gb, gc := m.Gradients()
			if d := tensor.MaxAbsDiff(gw.Mat, ref.W); d > 1e-11 {
				t.Errorf("level %v improved=%v: GW diff %g", lvl, improved, d)
			}
			if d := tensor.MaxAbsDiff(gb.Mat, ref.B.AsRow()); d > 1e-11 {
				t.Errorf("level %v improved=%v: GB diff %g", lvl, improved, d)
			}
			if d := tensor.MaxAbsDiff(gc.Mat, ref.C.AsRow()); d > 1e-11 {
				t.Errorf("level %v improved=%v: GC diff %g", lvl, improved, d)
			}
		}
	}
}

func TestGaussianRBMTrainsOnContinuousData(t *testing.T) {
	cfg := Config{Visible: 8, Hidden: 6, GaussianVisible: true, SampleHidden: true}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 7)
	batch := 40
	m, err := New(ctx, cfg, batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := gaussianClusters(rng.New(9), batch, cfg.Visible)
	dx := dev.MustAlloc(batch, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	first := m.Step(dx, 0.02)
	var last float64
	for i := 0; i < 500; i++ {
		last = m.Step(dx, 0.02)
	}
	if !(last < 0.5*first) {
		t.Fatalf("GRBM did not learn continuous data: %g → %g", first, last)
	}
	// Free energy should prefer training data over unstructured noise.
	p := m.Download()
	r := rng.New(11)
	fData, fNoise := 0.0, 0.0
	noise := tensor.NewVector(cfg.Visible)
	for i := 0; i < batch; i++ {
		fData += p.FreeEnergyGaussian(tensor.Vector(x.RowView(i)))
		for j := range noise {
			noise[j] = 2 * r.Norm()
		}
		fNoise += p.FreeEnergyGaussian(noise)
	}
	if !(fData < fNoise) {
		t.Fatalf("GRBM free energy does not prefer data: %g vs %g", fData/float64(batch), fNoise/float64(batch))
	}
}

func TestGaussianSamplingIsNoisyAroundTheMean(t *testing.T) {
	cfg := Config{Visible: 20, Hidden: 4, GaussianVisible: true, SampleVisible: true, SampleHidden: true}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 13)
	batch := 50
	m, err := New(ctx, cfg, batch, 14)
	if err != nil {
		t.Fatal(err)
	}
	x := gaussianClusters(rng.New(15), batch, cfg.Visible)
	dx := dev.MustAlloc(batch, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	m.Gradient(dx)
	// v1 = pv1 + N(0,1): the residual must look like unit-variance noise.
	diff := tensor.NewMatrix(batch, cfg.Visible)
	kernels.Sub(nil, kernels.Naive, diff, m.v1.Mat, m.pv1.Mat)
	mean := diff.Mean()
	variance := diff.SumSquares()/float64(batch*cfg.Visible) - mean*mean
	if math.Abs(mean) > 0.15 || math.Abs(variance-1) > 0.25 {
		t.Fatalf("visible noise mean %g variance %g, want ≈(0, 1)", mean, variance)
	}
}

func TestAddGaussianNoiseDeterministic(t *testing.T) {
	mean := tensor.NewMatrix(20, 10)
	a := tensor.NewMatrix(20, 10)
	b := tensor.NewMatrix(20, 10)
	kernels.AddGaussianNoise(nil, kernels.Naive, a, mean, 1, rng.New(7))
	kernels.AddGaussianNoise(nil, kernels.Naive, b, mean, 1, rng.New(7))
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("Gaussian noise not deterministic per seed")
	}
	kernels.AddGaussianNoise(nil, kernels.ParallelBlocked, b, mean, 1, rng.New(7))
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("Gaussian noise depends on kernel level")
	}
	// sigma scales the spread.
	kernels.AddGaussianNoise(nil, kernels.Naive, b, mean, 0.1, rng.New(8))
	if b.SumSquares() >= a.SumSquares() {
		t.Fatal("sigma scaling wrong")
	}
}
