// Package rbm implements the paper's Restricted Boltzmann Machine: a
// two-layer binary stochastic network with energy E(v,h) = −b'v − c'h −
// h'Wv (Eq. 7), trained by one-step Contrastive Divergence (Eqs. 10–13).
//
// Model is the device-resident implementation. Its gradient step schedules
// independent matrix operations concurrently following the dependency graph
// of the paper's Fig. 6 (the data-term statistics overlap with the
// reconstruction chain, and the three parameter gradients overlap with each
// other) when the context's AutoConcurrent flag is set. reference.go holds
// the host-only oracle: brute-force conditionals, free energy and exact
// log-likelihood for tiny machines.
package rbm

import (
	"fmt"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/tensor"
)

// Config holds the RBM geometry and CD options.
type Config struct {
	Visible int
	Hidden  int
	// SampleHidden draws binary hidden states for the positive phase
	// (true in the paper's Gibbs chain). Disabling it yields the
	// deterministic mean-field CD used by equivalence tests.
	SampleHidden bool
	// SampleVisible draws binary reconstructions in the negative phase.
	// Hinton's practical guide (the paper's [15]) recommends using the
	// probabilities instead, which is the default.
	SampleVisible bool
	// CDSteps is the number of Gibbs steps per gradient (CD-k); the paper
	// runs CD-1.
	CDSteps int
	// GaussianVisible switches the visible layer to linear units with unit
	// Gaussian noise (a Gaussian–Bernoulli RBM), the standard choice for
	// real-valued data like the natural-image patches of the paper's
	// dataset. The reconstruction is the mean b + hWᵀ (no sigmoid), and
	// SampleVisible adds N(0,1) noise instead of binarizing.
	GaussianVisible bool
	// Momentum, when non-zero, applies the classical-momentum update of
	// Hinton's practical guide instead of plain gradient ascent.
	Momentum float64
	// Lambda is the L2 weight-decay coefficient ("weight cost" in the
	// practical guide): the ascent direction becomes ∇ − λW.
	Lambda float64
	// Persistent switches the negative phase to Persistent Contrastive
	// Divergence (PCD, Tieleman 2008): the Gibbs chain continues from the
	// previous step's fantasy particles instead of restarting at the data,
	// giving a better model-expectation estimate for the same CDSteps.
	Persistent bool
	// SparsityTarget/SparsityCost regularize the hidden units toward a
	// target mean activation q (practical guide §11): the hidden-bias
	// gradient gains SparsityCost·(q − q̂_j), with q̂ the batch mean of the
	// positive-phase probabilities.
	SparsityTarget float64
	SparsityCost   float64
	// Batch is the minibatch size the device-resident model is built for.
	// Build requires it; the deprecated four-argument constructor fills it
	// from its positional batch argument.
	Batch int
	// Seed initializes the parameters (and, via the context, the sampling
	// streams). Zero is a valid seed.
	Seed uint64
}

// Validate checks the configuration, defaulting CDSteps to 1.
func (c *Config) Validate() error {
	if c.Visible <= 0 || c.Hidden <= 0 {
		return fmt.Errorf("rbm: non-positive layer size %d×%d", c.Visible, c.Hidden)
	}
	if c.CDSteps < 0 {
		return fmt.Errorf("rbm: negative CD steps %d", c.CDSteps)
	}
	if c.CDSteps == 0 {
		c.CDSteps = 1
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("rbm: momentum %g outside [0,1)", c.Momentum)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("rbm: negative weight decay %g", c.Lambda)
	}
	if c.SparsityCost < 0 {
		return fmt.Errorf("rbm: negative sparsity cost %g", c.SparsityCost)
	}
	if c.SparsityCost > 0 && (c.SparsityTarget <= 0 || c.SparsityTarget >= 1) {
		return fmt.Errorf("rbm: sparsity target %g outside (0,1)", c.SparsityTarget)
	}
	if c.Batch < 0 {
		return fmt.Errorf("rbm: negative batch size %d", c.Batch)
	}
	return nil
}

// Model is an RBM resident on a device with persistent parameter, gradient
// and Gibbs-chain workspace buffers.
type Model struct {
	Cfg   Config
	Ctx   *blas.Context
	Batch int

	// Parameters: p(h=1|v) = σ(v·W + c), p(v=1|h) = σ(h·Wᵀ + b).
	W *device.Buffer // Visible×Hidden
	B *device.Buffer // 1×Visible (visible bias b)
	C *device.Buffer // 1×Hidden (hidden bias c)

	// Gradients (log-likelihood ascent direction).
	GW *device.Buffer
	GB *device.Buffer
	GC *device.Buffer

	// Gibbs-chain workspace, Batch×…
	ph0, h0, ph1 *device.Buffer // hidden probabilities / samples
	pv1, v1      *device.Buffer // visible reconstruction
	dv           *device.Buffer // V0 − V1
	dh           *device.Buffer // PH0 − PH1

	// Velocity buffers (Momentum > 0 only).
	vW, vB, vC *device.Buffer
	// rowH is a 1×Hidden reduction scratch for the sparsity regularizer.
	rowH *device.Buffer
	// pchain holds the persistent fantasy particles (PCD only).
	pchain      *device.Buffer
	chainSeeded bool

	// inferOnly marks a forward-only model built by NewInference.
	inferOnly bool
}

// New allocates a model for the given batch size and uploads the reference
// initialization (small Gaussian weights, zero biases).
//
// Deprecated: use Build with Config.Batch and Config.Seed set.
func New(ctx *blas.Context, cfg Config, batch int, seed uint64) (*Model, error) {
	cfg.Batch = batch
	cfg.Seed = seed
	return Build(ctx, cfg)
}

// Build allocates a model for cfg.Batch examples and uploads the reference
// initialization (small Gaussian weights, zero biases) from cfg.Seed.
func Build(ctx *blas.Context, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	batch := cfg.Batch
	if batch <= 0 {
		return nil, fmt.Errorf("rbm: non-positive batch size %d", batch)
	}
	m := &Model{Cfg: cfg, Ctx: ctx, Batch: batch}
	dev := ctx.Dev
	var err error
	alloc := func(r, c int) *device.Buffer {
		if err != nil {
			return nil
		}
		var b *device.Buffer
		b, err = dev.Alloc(r, c)
		return b
	}
	v, h := cfg.Visible, cfg.Hidden
	m.W, m.B, m.C = alloc(v, h), alloc(1, v), alloc(1, h)
	m.GW, m.GB, m.GC = alloc(v, h), alloc(1, v), alloc(1, h)
	m.ph0, m.h0, m.ph1 = alloc(batch, h), alloc(batch, h), alloc(batch, h)
	m.pv1, m.v1 = alloc(batch, v), alloc(batch, v)
	m.dv, m.dh = alloc(batch, v), alloc(batch, h)
	if cfg.Momentum > 0 {
		m.vW, m.vB, m.vC = alloc(v, h), alloc(1, v), alloc(1, h)
	}
	if cfg.SparsityCost > 0 {
		m.rowH = alloc(1, h)
	}
	if cfg.Persistent {
		m.pchain = alloc(batch, v)
	}
	if err != nil {
		m.Free() // release the buffers allocated before the failure
		return nil, err
	}
	m.Upload(NewParams(cfg, cfg.Seed))
	return m, nil
}

// NewInference allocates a forward-only model for up to batch examples:
// parameters plus the two probability buffers, no gradient, velocity or
// chain workspace. p, when non-nil, provides the weights; nil initializes
// from cfg.Seed. Only Encode, Reconstruct, Upload and Download work on an
// inference model — the training entry points panic. Inference is
// deterministic mean-field (no sampling), matching Params.Encode exactly.
func NewInference(ctx *blas.Context, cfg Config, batch int, p *Params) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("rbm: non-positive batch size %d", batch)
	}
	m := &Model{Cfg: cfg, Ctx: ctx, Batch: batch, inferOnly: true}
	dev := ctx.Dev
	var err error
	alloc := func(r, c int) *device.Buffer {
		if err != nil {
			return nil
		}
		var b *device.Buffer
		b, err = dev.Alloc(r, c)
		return b
	}
	v, h := cfg.Visible, cfg.Hidden
	m.W, m.B, m.C = alloc(v, h), alloc(1, v), alloc(1, h)
	m.ph0, m.pv1 = alloc(batch, h), alloc(batch, v)
	if err != nil {
		m.Free() // release the buffers allocated before the failure
		return nil, err
	}
	if p == nil {
		p = NewParams(cfg, cfg.Seed)
	}
	m.Upload(p)
	return m, nil
}

// Free releases every device buffer of the model.
func (m *Model) Free() {
	dev := m.Ctx.Dev
	for _, b := range []*device.Buffer{m.W, m.B, m.C, m.GW, m.GB, m.GC, m.ph0, m.h0, m.ph1, m.pv1, m.v1, m.dv, m.dh, m.vW, m.vB, m.vC, m.rowH, m.pchain} {
		if b != nil {
			dev.Free(b)
		}
	}
}

// Upload transfers host parameters to the device.
func (m *Model) Upload(p *Params) {
	dev := m.Ctx.Dev
	dev.CopyIn(m.W, hostOrNil(dev, p.W), 0)
	dev.CopyIn(m.B, hostOrNil(dev, p.B.AsRow()), 0)
	dev.CopyIn(m.C, hostOrNil(dev, p.C.AsRow()), 0)
}

// Download copies the device parameters back to the host.
func (m *Model) Download() *Params {
	p := &Params{
		W: tensor.NewMatrix(m.Cfg.Visible, m.Cfg.Hidden),
		B: tensor.NewVector(m.Cfg.Visible),
		C: tensor.NewVector(m.Cfg.Hidden),
	}
	dev := m.Ctx.Dev
	dev.CopyOut(m.W, hostOrNil(dev, p.W))
	dev.CopyOut(m.B, hostOrNil(dev, p.B.AsRow()))
	dev.CopyOut(m.C, hostOrNil(dev, p.C.AsRow()))
	return p
}

func hostOrNil(dev *device.Device, m *tensor.Matrix) *tensor.Matrix {
	if dev.Numeric {
		return m
	}
	return nil
}

// hiddenFrom computes dst = σ(v·W + c) (Eq. 9 / Eq. 15 in batched vector
// form).
func (m *Model) hiddenFrom(dst, v *device.Buffer) {
	ctx := m.Ctx
	// One fused region per conditional at the Improved level: GEMM with
	// bias and sigmoid epilogue (§IV.B.2 loop combining).
	ctx.MaybeFused(func() {
		ctx.Gemm(false, false, 1, v, m.W, 0, dst)
		ctx.AddBiasRow(dst, m.C)
		ctx.Sigmoid(dst, dst)
	})
}

// visibleFrom computes the visible reconstruction: σ(h·Wᵀ + b) for binary
// units (Eq. 8 / Eq. 14), or the linear mean h·Wᵀ + b for Gaussian units.
func (m *Model) visibleFrom(dst, h *device.Buffer) {
	ctx := m.Ctx
	ctx.MaybeFused(func() {
		ctx.Gemm(false, true, 1, h, m.W, 0, dst)
		ctx.AddBiasRow(dst, m.B)
		if !m.Cfg.GaussianVisible {
			ctx.Sigmoid(dst, dst)
		}
	})
}

// Encode computes the deterministic hidden representation σ(x·W + c) for
// 1..Batch examples (one per row of x) and returns a view of the result,
// x.Rows×Hidden. The returned buffer is owned by the model and overwritten
// by the next call; CopyOut it (or read it) before encoding again. It is
// bit-identical to Params.Encode at the Baseline level.
func (m *Model) Encode(x *device.Buffer) *device.Buffer {
	n := m.checkInfer(x)
	y := sliceTo(m.ph0, n)
	m.hiddenFrom(y, x)
	return y
}

// Reconstruct maps 1..Batch examples through the mean-field round trip:
// hidden probabilities from Encode, then the visible reconstruction
// σ(h·Wᵀ + b) (or the linear Gaussian mean). Returns an x.Rows×Visible
// view owned by the model, overwritten by the next call.
func (m *Model) Reconstruct(x *device.Buffer) *device.Buffer {
	y := m.Encode(x)
	z := sliceTo(m.pv1, y.Rows)
	m.visibleFrom(z, y)
	return z
}

// checkInfer validates a forward-only input and returns its row count.
func (m *Model) checkInfer(x *device.Buffer) int {
	if x.Rows < 1 || x.Rows > m.Batch || x.Cols != m.Cfg.Visible {
		panic(fmt.Sprintf("rbm: inference input %dx%d, want 1..%d×%d", x.Rows, x.Cols, m.Batch, m.Cfg.Visible))
	}
	return x.Rows
}

// sliceTo returns b itself for a full-height batch and the [0,n) row view
// otherwise, so partial batches reuse the same workspace.
func sliceTo(b *device.Buffer, n int) *device.Buffer {
	if n == b.Rows {
		return b
	}
	return b.Slice(0, n)
}

// mustTrain panics when a training entry point is hit on a forward-only
// model, whose gradient and chain workspace was never allocated.
func (m *Model) mustTrain(op string) {
	if m.inferOnly {
		panic("rbm: " + op + " on an inference-only model (built by NewInference)")
	}
}

// Gradient runs the CD-k chain from the data batch v0 (Batch×Visible) and
// leaves the averaged log-likelihood gradient in GW/GB/GC. The schedule
// follows Fig. 6: once the positive hidden probabilities exist, the data
// statistics V0ᵀ·PH0 run concurrently with the reconstruction chain, and
// the final Vb/Vc/Vw reductions run concurrently with each other.
func (m *Model) Gradient(v0 *device.Buffer) {
	m.mustTrain("Gradient")
	m.checkInput(v0)
	ctx := m.Ctx

	// Positive phase.
	m.hiddenFrom(m.ph0, v0)
	hForChain := m.ph0
	if m.Cfg.SampleHidden {
		ctx.SampleBernoulli(m.h0, m.ph0)
		hForChain = m.h0
	}

	// PCD: the chain starts from the stored fantasy particles (seeded
	// from the first data batch) rather than from the data.
	if m.Cfg.Persistent {
		if !m.chainSeeded {
			ctx.Copy(m.pchain, v0)
			m.chainSeeded = true
		}
		m.hiddenFrom(m.ph1, m.pchain)
		hForChain = m.ph1
		if m.Cfg.SampleHidden {
			ctx.SampleBernoulli(m.h0, m.ph1)
			hForChain = m.h0
		}
	}

	// Data term of Eq. 10 concurrent with the first reconstruction GEMM.
	ctx.MaybeConcurrent(func() {
		ctx.Gemm(true, false, 1, v0, m.ph0, 0, m.GW)
		ctx.Gemm(false, true, 1, hForChain, m.W, 0, m.pv1)
	})
	ctx.MaybeFused(func() {
		ctx.AddBiasRow(m.pv1, m.B)
		if !m.Cfg.GaussianVisible {
			ctx.Sigmoid(m.pv1, m.pv1)
		}
	})
	vNeg := m.pv1
	if m.Cfg.SampleVisible {
		m.sampleVisible()
		vNeg = m.v1
	}

	// Additional Gibbs steps for CD-k (k > 1).
	for step := 1; step < m.Cfg.CDSteps; step++ {
		m.hiddenFrom(m.ph1, vNeg)
		hNext := m.ph1
		if m.Cfg.SampleHidden {
			ctx.SampleBernoulli(m.h0, m.ph1)
			hNext = m.h0
		}
		m.visibleFrom(m.pv1, hNext)
		vNeg = m.pv1
		if m.Cfg.SampleVisible {
			m.sampleVisible()
			vNeg = m.v1
		}
	}

	// PCD: persist the fantasy particles for the next step.
	if m.Cfg.Persistent {
		ctx.Copy(m.pchain, vNeg)
	}

	// Final hidden probabilities of the chain (always probabilities, per
	// the practical guide).
	m.hiddenFrom(m.ph1, vNeg)

	// Negative statistics and the elementwise differences, mutually
	// independent (the V2/H2 fan-out of Fig. 6).
	ctx.MaybeConcurrent(func() {
		ctx.Gemm(true, false, -1, vNeg, m.ph1, 1, m.GW)
		ctx.Sub(m.dv, v0, vNeg)
		ctx.Sub(m.dh, m.ph0, m.ph1)
	})

	// Vb, Vc (and the Vw scaling) concurrently — the last level of Fig. 6.
	ctx.MaybeConcurrent(func() {
		ctx.ColSums(m.dv, m.GB)
		ctx.ColSums(m.dh, m.GC)
	})
	invM := 1 / float64(m.Batch)
	ctx.MaybeFused(func() {
		ctx.Scale(invM, m.GW)
		ctx.Scale(invM, m.GB)
		ctx.Scale(invM, m.GC)
		if m.Cfg.Lambda != 0 {
			// Weight decay: ascend ∇ − λW.
			ctx.Axpy(-m.Cfg.Lambda, m.W, m.GW)
		}
	})
	if m.Cfg.SparsityCost > 0 {
		m.addSparsityRegularizer()
	}
}

// addSparsityRegularizer nudges the hidden biases toward the target mean
// activation: GC[j] += cost·(q − q̂_j), with q̂ reduced from the
// positive-phase probabilities on the device and the tiny (length-Hidden)
// correction applied on the host side of the gradient buffer.
func (m *Model) addSparsityRegularizer() {
	ctx := m.Ctx
	ctx.ColSums(m.ph0, m.rowH)
	if !ctx.Dev.Numeric {
		return
	}
	invM := 1 / float64(m.Batch)
	gc := m.GC.Mat.RowView(0)
	sums := m.rowH.Mat.RowView(0)
	for j := range gc {
		qHat := sums[j] * invM
		gc[j] += m.Cfg.SparsityCost * (m.Cfg.SparsityTarget - qHat)
	}
}

// sampleVisible draws v1 from the reconstruction distribution: Bernoulli
// for binary units, mean + N(0,1) for Gaussian units.
func (m *Model) sampleVisible() {
	ctx := m.Ctx
	if m.Cfg.GaussianVisible {
		ctx.AddGaussianNoise(m.v1, m.pv1, 1)
		return
	}
	ctx.SampleBernoulli(m.v1, m.pv1)
}

// ApplyUpdate ascends the log likelihood: θ ← θ + lr·∇θ (Eq. 13), with
// classical momentum when Cfg.Momentum > 0.
func (m *Model) ApplyUpdate(lr float64) {
	m.mustTrain("ApplyUpdate")
	ctx := m.Ctx
	if m.Cfg.Momentum == 0 {
		ctx.MaybeFused(func() {
			ctx.Axpy(lr, m.GW, m.W)
			ctx.Axpy(lr, m.GB, m.B)
			ctx.Axpy(lr, m.GC, m.C)
		})
		return
	}
	mu := m.Cfg.Momentum
	ctx.MaybeFused(func() {
		for _, pv := range []struct{ v, g, p *device.Buffer }{
			{m.vW, m.GW, m.W}, {m.vB, m.GB, m.B}, {m.vC, m.GC, m.C},
		} {
			ctx.Scale(mu, pv.v)
			ctx.Axpy(lr, pv.g, pv.v)
			ctx.Axpy(1, pv.v, pv.p)
		}
	})
}

// Step runs one CD-k update on the batch and returns the batch-mean squared
// reconstruction error ‖v0 − v̂1‖²/batch (0 on model-only devices), the
// conventional progress proxy for RBM training.
func (m *Model) Step(v0 *device.Buffer, lr float64) float64 {
	m.Gradient(v0)
	recon := m.Ctx.SumSquaredDiff(v0, m.pv1) / float64(m.Batch)
	m.ApplyUpdate(lr)
	return recon
}

// HiddenProbs exposes the positive-phase hidden probabilities of the last
// Gradient/Step call — the features a trained RBM layer feeds to the next
// RBM when stacking a Deep Belief Network.
func (m *Model) HiddenProbs() *device.Buffer { return m.ph0 }

// Reconstruction exposes the negative-phase visible probabilities.
func (m *Model) Reconstruction() *device.Buffer { return m.pv1 }

// Gradients exposes the gradient buffers in W, B, C order.
func (m *Model) Gradients() (gw, gb, gc *device.Buffer) { return m.GW, m.GB, m.GC }

func (m *Model) checkInput(v *device.Buffer) {
	if v.Rows != m.Batch || v.Cols != m.Cfg.Visible {
		panic(fmt.Sprintf("rbm: input %dx%d, want %dx%d", v.Rows, v.Cols, m.Batch, m.Cfg.Visible))
	}
}

// BatchSize implements the training engine's Trainable interface.
func (m *Model) BatchSize() int { return m.Batch }

// InputDim implements the training engine's Trainable interface.
func (m *Model) InputDim() int { return m.Cfg.Visible }
