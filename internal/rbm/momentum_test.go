package rbm

import (
	"testing"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func TestMomentumMatchesManualUpdate(t *testing.T) {
	cfg := Config{Visible: 6, Hidden: 4, Momentum: 0.8}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := New(ctx, cfg, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := binaryBatch(rng.New(3), 8, 6, 0.5)
	dx := dev.MustAlloc(8, 6)
	dev.CopyIn(dx, x, 0)

	// Mean-field CD gradients are deterministic, so a manual momentum
	// recursion on the host must track the device exactly.
	refCfg := Config{Visible: 6, Hidden: 4}
	want := m.Download()
	velW := tensor.NewMatrix(6, 4)
	const lr = 0.25
	for step := 0; step < 3; step++ {
		g := ZeroGrad(refCfg)
		CDGradMeanField(refCfg, want, x, g)
		for i := 0; i < 6; i++ {
			vr, gr, wr := velW.RowView(i), g.W.RowView(i), want.W.RowView(i)
			for j := range vr {
				vr[j] = 0.8*vr[j] + lr*gr[j]
				wr[j] += vr[j]
			}
		}
		m.Step(dx, lr)
		got := m.Download()
		// Track biases from the device (only W is manually replicated).
		want.B = got.B.Clone()
		want.C = got.C.Clone()
		if d := tensor.MaxAbsDiff(want.W, got.W); d > 1e-9 {
			t.Fatalf("step %d: momentum update diverged by %g", step, d)
		}
	}
}

func TestMomentumTrainingStillImprovesLikelihood(t *testing.T) {
	cfg := Config{Visible: 8, Hidden: 4, SampleHidden: true, Momentum: 0.5}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 16)
	m, err := New(ctx, cfg, 30, 17)
	if err != nil {
		t.Fatal(err)
	}
	x := stripeBatch(rng.New(18), 30, 8)
	dx := dev.MustAlloc(30, 8)
	dev.CopyIn(dx, x, 0)
	before := m.Download().LogLikelihood(x)
	for i := 0; i < 300; i++ {
		m.Step(dx, 0.3)
	}
	after := m.Download().LogLikelihood(x)
	if !(after > before+0.3) {
		t.Fatalf("momentum CD did not improve likelihood: %g → %g", before, after)
	}
}

func TestMomentumValidationAndFree(t *testing.T) {
	bad := Config{Visible: 4, Hidden: 2, Momentum: 1}
	if bad.Validate() == nil {
		t.Error("momentum 1 should be invalid")
	}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, err := New(ctx, Config{Visible: 4, Hidden: 2, Momentum: 0.9}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Free()
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}
