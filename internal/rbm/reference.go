package rbm

import (
	"fmt"
	"io"
	"math"

	"phideep/internal/nn"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Params is the host-side parameter set of an RBM.
type Params struct {
	W *tensor.Matrix // Visible×Hidden
	B tensor.Vector  // visible bias b (length Visible)
	C tensor.Vector  // hidden bias c (length Hidden)
}

// NewParams returns the conventional initialization: N(0, 0.01²) weights
// and zero biases (Hinton's practical guide, the paper's [15]).
func NewParams(cfg Config, seed uint64) *Params {
	r := rng.New(seed)
	p := &Params{
		W: tensor.NewMatrix(cfg.Visible, cfg.Hidden),
		B: tensor.NewVector(cfg.Visible),
		C: tensor.NewVector(cfg.Hidden),
	}
	p.W.RandomizeNorm(r, 0.01)
	return p
}

// Clone deep-copies the parameters.
func (p *Params) Clone() *Params {
	return &Params{W: p.W.Clone(), B: p.B.Clone(), C: p.C.Clone()}
}

// HiddenProb returns p(h_j = 1 | v) for every j (Eq. 9).
func (p *Params) HiddenProb(v tensor.Vector) tensor.Vector {
	h := p.W.Cols
	out := tensor.NewVector(h)
	for j := 0; j < h; j++ {
		s := p.C[j]
		for i, vi := range v {
			s += vi * p.W.At(i, j)
		}
		out[j] = nn.Sigmoid(s)
	}
	return out
}

// VisibleProb returns p(v_i = 1 | h) for every i (Eq. 8).
func (p *Params) VisibleProb(h tensor.Vector) tensor.Vector {
	v := p.W.Rows
	out := tensor.NewVector(v)
	for i := 0; i < v; i++ {
		s := p.B[i]
		row := p.W.RowView(i)
		for j, hj := range h {
			s += hj * row[j]
		}
		out[i] = nn.Sigmoid(s)
	}
	return out
}

// Energy returns E(v, h) = −b'v − c'h − h'Wv (Eq. 7).
func (p *Params) Energy(v, h tensor.Vector) float64 {
	e := -p.B.Dot(v) - p.C.Dot(h)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := p.W.RowView(i)
		for j, hj := range h {
			e -= hj * vi * row[j]
		}
	}
	return e
}

// FreeEnergy returns F(v) = −b'v − Σ_j log(1 + e^{c_j + (vW)_j}), with
// e^{−F(v)} ∝ p(v). Used as the training-progress diagnostic.
func (p *Params) FreeEnergy(v tensor.Vector) float64 {
	f := -p.B.Dot(v)
	for j := 0; j < p.W.Cols; j++ {
		s := p.C[j]
		for i, vi := range v {
			s += vi * p.W.At(i, j)
		}
		// log(1+e^s), stably.
		if s > 30 {
			f -= s
		} else {
			f -= math.Log1p(math.Exp(s))
		}
	}
	return f
}

// LogLikelihood returns the exact average log p(v) over the rows of x by
// enumerating the 2^Hidden hidden states for the free energy and the
// 2^Visible visible states for the partition function. It panics when
// Visible > 20 (enumeration would be infeasible); it exists for the tiny
// machines of the test suite.
func (p *Params) LogLikelihood(x *tensor.Matrix) float64 {
	nv := p.W.Rows
	if nv > 20 {
		panic(fmt.Sprintf("rbm: LogLikelihood enumeration over %d visible units is infeasible", nv))
	}
	// log Z = log Σ_v e^{−F(v)} via log-sum-exp.
	maxNegF := math.Inf(-1)
	negFs := make([]float64, 1<<nv)
	v := tensor.NewVector(nv)
	for bits := 0; bits < 1<<nv; bits++ {
		for i := 0; i < nv; i++ {
			v[i] = float64((bits >> i) & 1)
		}
		nf := -p.FreeEnergy(v)
		negFs[bits] = nf
		if nf > maxNegF {
			maxNegF = nf
		}
	}
	sum := 0.0
	for _, nf := range negFs {
		sum += math.Exp(nf - maxNegF)
	}
	logZ := maxNegF + math.Log(sum)

	ll := 0.0
	for r := 0; r < x.Rows; r++ {
		ll += -p.FreeEnergy(tensor.Vector(x.RowView(r))) - logZ
	}
	return ll / float64(x.Rows)
}

// Grad holds an RBM gradient in host form.
type Grad struct {
	W *tensor.Matrix
	B tensor.Vector
	C tensor.Vector
}

// ZeroGrad returns a zeroed gradient holder shaped like cfg.
func ZeroGrad(cfg Config) *Grad {
	return &Grad{
		W: tensor.NewMatrix(cfg.Visible, cfg.Hidden),
		B: tensor.NewVector(cfg.Visible),
		C: tensor.NewVector(cfg.Hidden),
	}
}

// VisibleMean returns the Gaussian-visible reconstruction mean b + hWᵀ
// (the linear counterpart of VisibleProb).
func (p *Params) VisibleMean(h tensor.Vector) tensor.Vector {
	v := p.W.Rows
	out := tensor.NewVector(v)
	for i := 0; i < v; i++ {
		s := p.B[i]
		row := p.W.RowView(i)
		for j, hj := range h {
			s += hj * row[j]
		}
		out[i] = s
	}
	return out
}

// FreeEnergyGaussian returns the Gaussian-visible free energy
// F(v) = ½Σ(v_i−b_i)² − Σ_j log(1 + e^{c_j + (vW)_j}).
func (p *Params) FreeEnergyGaussian(v tensor.Vector) float64 {
	f := 0.0
	for i, vi := range v {
		d := vi - p.B[i]
		f += 0.5 * d * d
	}
	for j := 0; j < p.W.Cols; j++ {
		s := p.C[j]
		for i, vi := range v {
			s += vi * p.W.At(i, j)
		}
		if s > 30 {
			f -= s
		} else {
			f -= math.Log1p(math.Exp(s))
		}
	}
	return f
}

// CDGradMeanField computes the deterministic (no-sampling) CD-1 gradient on
// the batch x with plain loops: positive statistics from ph0 = p(h|v0),
// reconstruction pv1 = p(v|ph0), negative statistics from ph1 = p(h|pv1),
// all averaged over the batch. It is the oracle the device Model must match
// exactly when both sampling flags are off. For Gaussian-visible machines
// the reconstruction uses VisibleMean.
func CDGradMeanField(cfg Config, p *Params, x *tensor.Matrix, g *Grad) {
	m := x.Rows
	if m == 0 {
		panic("rbm: CDGradMeanField on empty batch")
	}
	g.W.Zero()
	g.B.Zero()
	g.C.Zero()
	invM := 1 / float64(m)
	for r := 0; r < m; r++ {
		v0 := tensor.Vector(x.RowView(r))
		ph0 := p.HiddenProb(v0)
		var pv1 tensor.Vector
		if cfg.GaussianVisible {
			pv1 = p.VisibleMean(ph0)
		} else {
			pv1 = p.VisibleProb(ph0)
		}
		ph1 := p.HiddenProb(pv1)
		for i := 0; i < cfg.Visible; i++ {
			gw := g.W.RowView(i)
			for j := 0; j < cfg.Hidden; j++ {
				gw[j] += (v0[i]*ph0[j] - pv1[i]*ph1[j]) * invM
			}
			g.B[i] += (v0[i] - pv1[i]) * invM
		}
		for j := 0; j < cfg.Hidden; j++ {
			g.C[j] += (ph0[j] - ph1[j]) * invM
		}
	}
}

// ExactGrad computes the true log-likelihood gradient ∂log p(x)/∂θ by
// enumerating the model expectation (Eqs. 10–12 with the ⟨·⟩_model term
// exact). Only feasible for tiny machines; used to verify that CD-1 is a
// descent-aligned approximation.
func ExactGrad(cfg Config, p *Params, x *tensor.Matrix, g *Grad) {
	nv, nh := cfg.Visible, cfg.Hidden
	if nv > 16 {
		panic(fmt.Sprintf("rbm: ExactGrad enumeration over %d visible units is infeasible", nv))
	}
	g.W.Zero()
	g.B.Zero()
	g.C.Zero()
	m := x.Rows
	invM := 1 / float64(m)

	// Data expectation: ⟨v_i h_j⟩_data with h marginalized to p(h|v).
	for r := 0; r < m; r++ {
		v0 := tensor.Vector(x.RowView(r))
		ph := p.HiddenProb(v0)
		for i := 0; i < nv; i++ {
			gw := g.W.RowView(i)
			for j := 0; j < nh; j++ {
				gw[j] += v0[i] * ph[j] * invM
			}
			g.B[i] += v0[i] * invM
		}
		for j := 0; j < nh; j++ {
			g.C[j] += ph[j] * invM
		}
	}

	// Model expectation via enumeration of v weighted by p(v).
	v := tensor.NewVector(nv)
	weights := make([]float64, 1<<nv)
	maxNegF := math.Inf(-1)
	for bits := 0; bits < 1<<nv; bits++ {
		for i := 0; i < nv; i++ {
			v[i] = float64((bits >> i) & 1)
		}
		nf := -p.FreeEnergy(v)
		weights[bits] = nf
		if nf > maxNegF {
			maxNegF = nf
		}
	}
	z := 0.0
	for bits := range weights {
		weights[bits] = math.Exp(weights[bits] - maxNegF)
		z += weights[bits]
	}
	for bits := 0; bits < 1<<nv; bits++ {
		pw := weights[bits] / z
		for i := 0; i < nv; i++ {
			v[i] = float64((bits >> i) & 1)
		}
		ph := p.HiddenProb(v)
		for i := 0; i < nv; i++ {
			gw := g.W.RowView(i)
			for j := 0; j < nh; j++ {
				gw[j] -= pw * v[i] * ph[j]
			}
			g.B[i] -= pw * v[i]
		}
		for j := 0; j < nh; j++ {
			g.C[j] -= pw * ph[j]
		}
	}
}

// Encode maps one example x (length Visible) to the hidden probabilities
// y (length Hidden): y = σ(x·W + c) — the representation a trained RBM
// layer feeds to the next RBM in a Deep Belief Network.
func (p *Params) Encode(x, y []float64) {
	for j := range y {
		s := p.C[j]
		for k, xv := range x {
			s += xv * p.W.At(k, j)
		}
		y[j] = nn.Sigmoid(s)
	}
}

// Reconstruct maps one example x (length Visible) through the mean-field
// round trip to its reconstruction z (length Visible): hidden probabilities
// σ(x·W + c), then σ(h·Wᵀ + b) for binary visibles or the linear mean
// b + hWᵀ when gaussian is set (Config.GaussianVisible). It is the scalar
// host reference the serving layer degrades to under overload.
func (p *Params) Reconstruct(x, z []float64, gaussian bool) {
	y := make([]float64, p.W.Cols)
	p.Encode(x, y)
	for i := range z {
		s := p.B[i]
		row := p.W.RowView(i)
		for j, yj := range y {
			s += yj * row[j]
		}
		if gaussian {
			z[i] = s
		} else {
			z[i] = nn.Sigmoid(s)
		}
	}
}

// ParamSet registers the parameters in canonical order (W, b, c) for the
// flat-vector optimizers and for serialization.
func (p *Params) ParamSet() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.AddMatrix("W", p.W)
	ps.AddVector("b", p.B)
	ps.AddVector("c", p.C)
	return ps
}

// Save writes the parameters to w in the phideep checkpoint format.
func (p *Params) Save(w io.Writer) error { return nn.SaveParamSet(w, p.ParamSet()) }

// Load reads parameters from r into p, validating size and checksum.
func (p *Params) Load(r io.Reader) error { return nn.LoadParamSet(r, p.ParamSet()) }
