package rbm

import (
	"math"
	"testing"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func binaryBatch(r *rng.RNG, n, dim int, p float64) *tensor.Matrix {
	x := tensor.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = r.Bernoulli(p)
		}
	}
	return x
}

// stripeBatch samples from a two-mode distribution: either the left or the
// right half of the units is on (plus flip noise) — an easily learnable
// structure for a small RBM.
func stripeBatch(r *rng.RNG, n, dim int) *tensor.Matrix {
	x := tensor.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		left := r.Float64() < 0.5
		for j := range row {
			on := (j < dim/2) == left
			v := 0.0
			if on {
				v = 1
			}
			if r.Float64() < 0.05 { // flip noise
				v = 1 - v
			}
			row[j] = v
		}
	}
	return x
}

func TestConditionalProbabilities(t *testing.T) {
	cfg := Config{Visible: 3, Hidden: 2}
	p := NewParams(cfg, 1)
	p.W.Set(0, 0, 0.5)
	p.W.Set(2, 1, -1.5)
	p.B[1] = 0.3
	p.C[0] = -0.2
	v := tensor.Vector{1, 0, 1}
	h := p.HiddenProb(v)
	// p(h_0|v) = σ(c0 + W[0,0]v0 + W[1,0]v1 + W[2,0]v2).
	want0 := 1 / (1 + math.Exp(-(-0.2 + 0.5*1 + p.W.At(1, 0)*0 + p.W.At(2, 0)*1)))
	if math.Abs(h[0]-want0) > 1e-12 {
		t.Fatalf("HiddenProb[0] = %g want %g", h[0], want0)
	}
	hv := tensor.Vector{1, 1}
	vis := p.VisibleProb(hv)
	want1 := 1 / (1 + math.Exp(-(0.3 + p.W.At(1, 0) + p.W.At(1, 1))))
	if math.Abs(vis[1]-want1) > 1e-12 {
		t.Fatalf("VisibleProb[1] = %g want %g", vis[1], want1)
	}
}

func TestEnergyFreeEnergyConsistency(t *testing.T) {
	// e^{−F(v)} must equal Σ_h e^{−E(v,h)}.
	cfg := Config{Visible: 4, Hidden: 3}
	p := NewParams(cfg, 3)
	p.W.RandomizeNorm(rng.New(4), 0.7)
	p.B.Randomize(rng.New(5), -0.5, 0.5)
	p.C.Randomize(rng.New(6), -0.5, 0.5)
	v := tensor.Vector{1, 0, 1, 1}
	sum := 0.0
	h := tensor.NewVector(3)
	for bits := 0; bits < 8; bits++ {
		for j := 0; j < 3; j++ {
			h[j] = float64((bits >> j) & 1)
		}
		sum += math.Exp(-p.Energy(v, h))
	}
	if math.Abs(math.Log(sum)+p.FreeEnergy(v)) > 1e-10 {
		t.Fatalf("free energy inconsistent: log Σ e^-E = %g, -F = %g", math.Log(sum), -p.FreeEnergy(v))
	}
}

// TestCDGradApproximatesExactGrad: on a tiny machine, the mean-field CD-1
// gradient must be positively aligned with the exact likelihood gradient —
// CD is a biased but descent-aligned approximation.
func TestCDGradApproximatesExactGrad(t *testing.T) {
	cfg := Config{Visible: 5, Hidden: 3}
	p := NewParams(cfg, 8)
	p.W.RandomizeNorm(rng.New(9), 0.3)
	x := binaryBatch(rng.New(10), 40, 5, 0.4)
	cd := ZeroGrad(cfg)
	exact := ZeroGrad(cfg)
	CDGradMeanField(cfg, p, x, cd)
	ExactGrad(cfg, p, x, exact)
	dot, ncd, nex := 0.0, 0.0, 0.0
	acc := func(a, b *tensor.Matrix) {
		for i := 0; i < a.Rows; i++ {
			ra, rb := a.RowView(i), b.RowView(i)
			for j := range ra {
				dot += ra[j] * rb[j]
				ncd += ra[j] * ra[j]
				nex += rb[j] * rb[j]
			}
		}
	}
	acc(cd.W, exact.W)
	acc(cd.B.AsRow(), exact.B.AsRow())
	acc(cd.C.AsRow(), exact.C.AsRow())
	cosine := dot / math.Sqrt(ncd*nex)
	if cosine < 0.5 {
		t.Fatalf("CD-1 gradient poorly aligned with exact gradient: cos=%g", cosine)
	}
}

// TestExactGradientAscentImprovesLikelihood sanity-checks the enumeration
// oracle itself.
func TestExactGradientAscentImprovesLikelihood(t *testing.T) {
	cfg := Config{Visible: 6, Hidden: 3}
	p := NewParams(cfg, 11)
	x := stripeBatch(rng.New(12), 60, 6)
	before := p.LogLikelihood(x)
	g := ZeroGrad(cfg)
	for i := 0; i < 150; i++ {
		ExactGrad(cfg, p, x, g)
		for r := 0; r < cfg.Visible; r++ {
			pw, gw := p.W.RowView(r), g.W.RowView(r)
			for j := range pw {
				pw[j] += 0.5 * gw[j]
			}
		}
		for j := range p.B {
			p.B[j] += 0.5 * g.B[j]
		}
		for j := range p.C {
			p.C[j] += 0.5 * g.C[j]
		}
	}
	after := p.LogLikelihood(x)
	if !(after > before+0.5) {
		t.Fatalf("exact ascent did not improve likelihood: %g → %g", before, after)
	}
}

// TestDeviceMeanFieldMatchesReference checks the device CD-1 gradient with
// sampling disabled against the loop oracle at every level.
func TestDeviceMeanFieldMatchesReference(t *testing.T) {
	cfg := Config{Visible: 7, Hidden: 4}
	batch := 9
	x := binaryBatch(rng.New(13), batch, cfg.Visible, 0.5)
	p := NewParams(cfg, 14)
	p.W.RandomizeNorm(rng.New(15), 0.4)
	ref := ZeroGrad(cfg)
	CDGradMeanField(cfg, p, x, ref)

	pool := parallel.NewPool(3)
	defer pool.Close()
	for _, lvl := range kernels.Levels {
		for _, improved := range []bool{false, true} {
			dev := device.New(sim.XeonPhi5110P(), true, pool)
			ctx := blas.NewContext(dev, lvl, 1)
			ctx.AutoFuse = improved
			ctx.AutoConcurrent = improved
			m, err := New(ctx, cfg, batch, 14)
			if err != nil {
				t.Fatal(err)
			}
			m.Upload(p)
			dx := dev.MustAlloc(batch, cfg.Visible)
			dev.CopyIn(dx, x, 0)
			m.Gradient(dx)
			gw, gb, gc := m.Gradients()
			if d := tensor.MaxAbsDiff(gw.Mat, ref.W); d > 1e-11 {
				t.Errorf("level %v improved=%v: GW diff %g", lvl, improved, d)
			}
			if d := tensor.MaxAbsDiff(gb.Mat, ref.B.AsRow()); d > 1e-11 {
				t.Errorf("level %v improved=%v: GB diff %g", lvl, improved, d)
			}
			if d := tensor.MaxAbsDiff(gc.Mat, ref.C.AsRow()); d > 1e-11 {
				t.Errorf("level %v improved=%v: GC diff %g", lvl, improved, d)
			}
		}
	}
}

func TestTrainingImprovesLikelihoodAndReconstruction(t *testing.T) {
	cfg := Config{Visible: 8, Hidden: 4, SampleHidden: true}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 16)
	batch := 30
	m, err := New(ctx, cfg, batch, 17)
	if err != nil {
		t.Fatal(err)
	}
	x := stripeBatch(rng.New(18), batch, cfg.Visible)
	dx := dev.MustAlloc(batch, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	before := m.Download().LogLikelihood(x)
	first := m.Step(dx, 0.4)
	var last float64
	for i := 0; i < 400; i++ {
		last = m.Step(dx, 0.4)
	}
	after := m.Download().LogLikelihood(x)
	if !(after > before+0.3) {
		t.Fatalf("CD training did not improve likelihood: %g → %g", before, after)
	}
	if !(last < first) {
		t.Fatalf("reconstruction error did not fall: %g → %g", first, last)
	}
}

func TestCDkMoreStepsStillWork(t *testing.T) {
	cfg := Config{Visible: 6, Hidden: 3, SampleHidden: true, SampleVisible: true, CDSteps: 3}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 19)
	batch := 20
	m, err := New(ctx, cfg, batch, 20)
	if err != nil {
		t.Fatal(err)
	}
	x := stripeBatch(rng.New(21), batch, cfg.Visible)
	dx := dev.MustAlloc(batch, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	before := m.Download().LogLikelihood(x)
	for i := 0; i < 300; i++ {
		m.Step(dx, 0.3)
	}
	after := m.Download().LogLikelihood(x)
	if !(after > before) {
		t.Fatalf("CD-3 did not improve likelihood: %g → %g", before, after)
	}
}

func TestSamplingDeterministicPerSeed(t *testing.T) {
	cfg := Config{Visible: 6, Hidden: 4, SampleHidden: true, SampleVisible: true}
	run := func() *tensor.Matrix {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := blas.NewContext(dev, kernels.ParallelBlocked, 23)
		m, _ := New(ctx, cfg, 10, 24)
		x := binaryBatch(rng.New(25), 10, 6, 0.5)
		dx := dev.MustAlloc(10, 6)
		dev.CopyIn(dx, x, 0)
		for i := 0; i < 5; i++ {
			m.Step(dx, 0.2)
		}
		return m.Download().W
	}
	a, b := run(), run()
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("stochastic training not reproducible for a fixed seed")
	}
}

func TestConfigValidationAndDefaults(t *testing.T) {
	c := Config{Visible: 3, Hidden: 2}
	if err := c.Validate(); err != nil || c.CDSteps != 1 {
		t.Fatalf("defaulting failed: %v %d", err, c.CDSteps)
	}
	for _, bad := range []Config{
		{Visible: 0, Hidden: 2},
		{Visible: 2, Hidden: 0},
		{Visible: 2, Hidden: 2, CDSteps: -1},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should fail", bad)
		}
	}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	if _, err := New(ctx, Config{Visible: 2, Hidden: 2}, 0, 1); err == nil {
		t.Error("zero batch should fail")
	}
}

func TestFreeReleasesAllBuffers(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, err := New(ctx, Config{Visible: 5, Hidden: 3}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Free()
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}

func TestLogLikelihoodGuards(t *testing.T) {
	cfg := Config{Visible: 25, Hidden: 2}
	p := NewParams(cfg, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for infeasible enumeration")
		}
	}()
	p.LogLikelihood(tensor.NewMatrix(1, 25))
}

func TestTrainableInterface(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, _ := New(ctx, Config{Visible: 5, Hidden: 3}, 4, 1)
	if m.BatchSize() != 4 || m.InputDim() != 5 {
		t.Fatal("Trainable accessors wrong")
	}
}
