package rbm

import (
	"testing"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func TestPCDImprovesLikelihood(t *testing.T) {
	cfg := Config{Visible: 8, Hidden: 4, SampleHidden: true, SampleVisible: true, Persistent: true}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 16)
	batch := 30
	m, err := New(ctx, cfg, batch, 17)
	if err != nil {
		t.Fatal(err)
	}
	x := stripeBatch(rng.New(18), batch, 8)
	dx := dev.MustAlloc(batch, 8)
	dev.CopyIn(dx, x, 0)
	before := m.Download().LogLikelihood(x)
	for i := 0; i < 400; i++ {
		m.Step(dx, 0.1)
	}
	after := m.Download().LogLikelihood(x)
	if !(after > before+0.3) {
		t.Fatalf("PCD did not improve likelihood: %g → %g", before, after)
	}
}

func TestPCDChainPersistsAcrossSteps(t *testing.T) {
	cfg := Config{Visible: 6, Hidden: 3, SampleHidden: true, SampleVisible: true, Persistent: true}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 23)
	m, err := New(ctx, cfg, 10, 24)
	if err != nil {
		t.Fatal(err)
	}
	x := binaryBatch(rng.New(25), 10, 6, 0.5)
	dx := dev.MustAlloc(10, 6)
	dev.CopyIn(dx, x, 0)
	m.Step(dx, 0.2)
	chain1 := m.pchain.Mat.Clone()
	// The chain was seeded and then advanced: it should differ from the
	// data (stochastic reconstruction).
	if tensor.MaxAbsDiff(chain1, dx.Mat) == 0 {
		t.Fatal("chain did not move off the data")
	}
	m.Step(dx, 0.2)
	chain2 := m.pchain.Mat
	if tensor.MaxAbsDiff(chain1, chain2) == 0 {
		t.Fatal("chain did not evolve across steps")
	}
}

func TestPCDFreeAndValidation(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, err := New(ctx, Config{Visible: 4, Hidden: 2, Persistent: true}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Free()
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}

func TestCopyOp(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	src := dev.MustAlloc(3, 3)
	src.Mat.Fill(7)
	dst := dev.MustAlloc(3, 3)
	before := dev.Now()
	ctx.Copy(dst, src)
	if tensor.MaxAbsDiff(dst.Mat, src.Mat) != 0 {
		t.Fatal("Copy did not copy")
	}
	if !(dev.Now() > before) {
		t.Fatal("Copy charged no simulated time")
	}
}
